#ifndef CENN_SERVE_SERVICE_H_
#define CENN_SERVE_SERVICE_H_

/**
 * @file
 * SolverService — the transport-independent core of cenn_serve: a
 * long-lived multi-tenant front end over SolverSession.
 *
 * One service owns one ThreadPool, one JobRegistry and one
 * AdmissionController; each accepted job runs as one pool closure
 * that builds a per-job SolverSession (with its own StatRegistry and
 * HealthGuard) and drives it with the same fault-tolerant retry loop
 * as the batch runner — a crash or guard trip rebuilds the session,
 * restores the last good checkpoint from the work dir, and retries up
 * to max_retries times. A job that cannot recover reports "diverged"
 * or "failed"; the server itself never goes down with it.
 *
 * The entry point is HandleLine: one cenn.serve.v1 request line in,
 * one response line out, callable from any number of transport
 * threads concurrently. Ops:
 *
 *   ping      liveness + server info
 *   submit    {"op":"submit","tenant":t,"spec":{manifest keys...},
 *              ["fault_inject":spec]} -> {"job":"jN","status":"queued"}
 *   status    live status of a job (steps progress while running)
 *   result    terminal result; "wait":true long-polls ("timeout_ms")
 *   cancel    cancels a queued or running job
 *   snapshot  pauses a running job at a slice boundary, returns one
 *             layer's state, resumes (incremental result delivery)
 *   stats     full stat-registry dump (serve.* subtree included)
 *   shutdown  asks the host process to drain and exit
 *
 * Drain() (SIGTERM path) stops admission, flushes queued jobs to
 * "interrupted", pauses running sessions so they checkpoint and
 * report "interrupted", and waits for the pool — no orphaned
 * sessions, no corrupt checkpoints, and every waiter is woken with a
 * terminal status.
 *
 * Observability: the service binds a `serve.*` subtree (admission,
 * completion and wire counters, live queue gauges, lazily created
 * `serve.tenant.<name>.*` per-tenant counters) into its own
 * StatRegistry, streams it through a MetricsEmitter when configured,
 * and exposes the registry for the stats op.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "health/health_guard.h"
#include "obs/metrics_emitter.h"
#include "obs/stat_registry.h"
#include "serve/admission.h"
#include "serve/job_registry.h"
#include "serve/wire.h"
#include "runtime/thread_pool.h"

namespace cenn {

class JsonValue;

/** Service configuration (see field comments). */
struct ServiceOptions {
  /** Pool workers running jobs concurrently. */
  int num_threads = 2;

  /** Pool job-queue bound (TrySubmit rejects above it). */
  std::size_t queue_capacity = 16;

  /** Max in-flight jobs per tenant (0 = unlimited). */
  int tenant_quota = 8;

  /**
   * Max in-flight jobs across tenants; 0 derives
   * queue_capacity + num_threads (the natural bound: a full queue
   * plus busy workers).
   */
  std::size_t max_in_flight = 0;

  /** Directory for per-job checkpoints (required). */
  std::string work_dir;

  /** Seed from which unseeded jobs derive theirs (Rng::Split). */
  std::uint64_t base_seed = 42;

  /** Extra attempts after a crash or guard trip. */
  int max_retries = 2;

  /** Base retry delay; attempt k waits backoff << (k-2). */
  int retry_backoff_ms = 0;

  /** Auto-checkpoint interval for jobs that set none (0 = off). */
  std::uint64_t checkpoint_every = 64;

  /** Largest rows*cols a submit may ask for (0 = unlimited). */
  std::size_t max_cells = 1u << 20;

  /** Largest steps a submit may ask for (0 = unlimited). */
  std::uint64_t max_steps = 0;

  /** Attach a HealthGuard (with `guard` thresholds) to every job. */
  bool guard_enabled = true;

  /** Guard thresholds when guard_enabled is set. */
  HealthGuardConfig guard;

  /** Retry hint on quota/busy rejections. */
  int retry_after_ms = 200;

  /** Server-wide JSONL metrics stream ("" = off). */
  std::string metrics_path;
  int metrics_interval_ms = 250;
};

/** The serve core (see file comment). */
class SolverService
{
  public:
    explicit SolverService(ServiceOptions options);

    /** Drains (idempotent with an explicit Drain). */
    ~SolverService();

    SolverService(const SolverService&) = delete;
    SolverService& operator=(const SolverService&) = delete;

    /**
     * Handles one request line, writes one response line (no trailing
     * newline). Never throws, never fatal on any input. Returns false
     * when the request asks the host process to shut down ("shutdown"
     * op) — the response is still written and must still be sent.
     */
    bool HandleLine(const std::string& line, std::string* response);

    /**
     * Graceful shutdown: stops admission, flushes the queue to
     * "interrupted", pauses running sessions (they checkpoint and
     * finish "interrupted"), waits for the pool and stops the metrics
     * stream. Idempotent; safe while transport threads are still
     * inside HandleLine.
     */
    void Drain();

    bool Draining() const { return draining_.load(); }

    /** Transport hook: counts one accepted connection. */
    void OnConnection() { counters_.connections.fetch_add(1); }

    /** The service registry (stats op; tests). */
    const StatRegistry& Stats() const { return registry_; }

    /** The job registry (tests). */
    JobRegistry& Jobs() { return jobs_; }

  private:
    /** Wire counters; atomics because transport threads bump them. */
    struct Counters {
      std::atomic<std::uint64_t> connections{0};
      std::atomic<std::uint64_t> requests{0};
      std::atomic<std::uint64_t> bad_requests{0};
      std::atomic<std::uint64_t> accepted{0};
      std::atomic<std::uint64_t> rejected_quota{0};
      std::atomic<std::uint64_t> rejected_busy{0};
      std::atomic<std::uint64_t> rejected_invalid{0};
      std::atomic<std::uint64_t> rejected_draining{0};
      std::atomic<std::uint64_t> completed{0};
      std::atomic<std::uint64_t> recovered{0};
      std::atomic<std::uint64_t> retries{0};
      std::atomic<std::uint64_t> cancelled{0};
      std::atomic<std::uint64_t> interrupted{0};
      std::atomic<std::uint64_t> failed{0};
      std::atomic<std::uint64_t> snapshots{0};
      std::atomic<std::uint64_t> steps_executed{0};
      std::atomic<std::uint64_t> faults_injected{0};
    };

    /** Per-tenant counters, created lazily on first submit. */
    struct TenantCounters {
      std::atomic<std::uint64_t> accepted{0};
      std::atomic<std::uint64_t> rejected{0};
      std::atomic<std::uint64_t> completed{0};
      std::atomic<std::uint64_t> failed{0};
    };

    void BindServiceStats();
    TenantCounters* TenantStats(const std::string& tenant);

    /** @name Op handlers (HandleLine dispatch targets). */
    ///@{
    std::string HandlePing();
    std::string HandleSubmit(const JsonValue& request);
    std::string HandleStatus(const JsonValue& request);
    std::string HandleResult(const JsonValue& request);
    std::string HandleCancel(const JsonValue& request);
    std::string HandleSnapshot(const JsonValue& request);
    std::string HandleStats();
    ///@}

    /** The pool closure: runs one job's retry loop to a terminal. */
    void RunJob(ServeJob* job);

    /**
     * Moves `job` to terminal `status` (first writer wins), fills the
     * result fields, releases admission and bumps the terminal
     * counters. `session` may be null (job never ran).
     */
    void Finalize(ServeJob* job, ServeJobStatus status,
                  SolverSession* session, const std::string& message);

    ServiceOptions options_;

    StatRegistry registry_;
    Counters counters_;
    std::mutex tenant_mu_;
    std::map<std::string, std::unique_ptr<TenantCounters>> tenants_;

    AdmissionController admission_;
    JobRegistry jobs_;
    std::unique_ptr<ThreadPool> pool_;
    std::unique_ptr<MetricsEmitter> metrics_;
    /** LutStore listener forcing metrics samples; 0 = none. */
    std::uint64_t lut_listener_token_ = 0;

    std::atomic<bool> draining_{false};
    std::mutex drain_mu_;  // serializes Drain bodies
    std::atomic<std::uint64_t> dispatch_seq_{0};
};

}  // namespace cenn

#endif  // CENN_SERVE_SERVICE_H_
