#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace cenn {

namespace {

/** Sends all of `data`; false on any error (peer gone). */
bool
SendAll(int fd, const std::string& data)
{
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(TcpServerOptions options, Handler handler,
                     ConnectionHook on_connection)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      on_connection_(std::move(on_connection))
{
  CENN_ASSERT(handler_ != nullptr, "TcpServer: null handler");
}

TcpServer::~TcpServer()
{
  Stop();
}

bool
TcpServer::Start(std::string* error)
{
  CENN_ASSERT(!started_, "TcpServer::Start called twice");
  started_ = true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host '" + options_.host + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));

  if (::pipe(wake_pipe_) != 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  acceptor_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void
TcpServer::AcceptLoop()
{
  while (!stopping_.load()) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (fds[1].revents != 0 || stopping_.load()) {
      break;  // Stop() woke us
    }
    if (fds[0].revents == 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    connections_.fetch_add(1);
    if (on_connection_) {
      on_connection_();
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    // Detached: the thread reaps itself via active_conns_ below, so a
    // long-lived server never accumulates dead thread handles.
    ++active_conns_;
    std::thread([this, fd] { ConnectionLoop(fd); }).detach();
  }
}

void
TcpServer::ConnectionLoop(int fd)
{
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // peer closed or socket shut down by Stop()
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > options_.max_line_bytes &&
        buffer.find('\n') == std::string::npos) {
      SendAll(fd,
              "{\"schema\":\"cenn.serve.v1\",\"ok\":false,\"op\":\"\","
              "\"error\":\"parse\",\"message\":\"request line exceeds " +
                  std::to_string(options_.max_line_bytes) + " bytes\"}\n");
      break;
    }
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (line.empty()) {
        continue;  // blank keep-alive lines are ignored
      }
      if (line.size() > options_.max_line_bytes) {
        SendAll(fd,
                "{\"schema\":\"cenn.serve.v1\",\"ok\":false,\"op\":\"\","
                "\"error\":\"parse\",\"message\":\"request line exceeds " +
                    std::to_string(options_.max_line_bytes) + " bytes\"}\n");
        open = false;
        break;
      }
      std::string response;
      const bool keep_serving = handler_(line, &response);
      if (!keep_serving) {
        // Raise the flag before flushing the response: a client that
        // has read the shutdown ack must observe ShutdownRequested().
        shutdown_requested_.store(true);
      }
      if (!response.empty() && !SendAll(fd, response + "\n")) {
        open = false;
        break;
      }
      if (!keep_serving) {
        open = false;
        break;
      }
    }
  }
  {
    // Deregister before closing so Stop() never shuts down a
    // recycled descriptor number.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
      if (*it == fd) {
        conn_fds_.erase(it);
        break;
      }
    }
  }
  ::close(fd);
  {
    // Last touch of *this. Notify while holding the lock so Stop()
    // (which may destroy the condvar right after its wait returns)
    // cannot race the notify.
    std::lock_guard<std::mutex> lock(conn_mu_);
    --active_conns_;
    conn_cv_.notify_all();
  }
}

void
TcpServer::Stop()
{
  if (!started_ || stopped_) {
    return;
  }
  stopped_ = true;
  stopping_.store(true);

  // Wake the acceptor, then the connection readers.
  const char byte = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) {
      ::shutdown(fd, SHUT_RDWR);  // unblocks recv; the thread closes fd
    }
    // Connection threads are detached; wait for each to deregister
    // its fd, close it and decrement the count.
    conn_cv_.wait(lock, [this] { return active_conns_ == 0; });
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

}  // namespace cenn
