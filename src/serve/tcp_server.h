#ifndef CENN_SERVE_TCP_SERVER_H_
#define CENN_SERVE_TCP_SERVER_H_

/**
 * @file
 * Newline-delimited request/response TCP transport for cenn_serve.
 *
 * One acceptor thread (poll over the listen socket plus a self-pipe
 * for wakeup) and one detached thread per connection — each reaps
 * itself on exit (an active-connection count, not a join, gates
 * Stop(), so a long-lived server does not accumulate one dead thread
 * handle per served connection). Each connection reads lines, hands
 * them to the handler, and writes the handler's response line back;
 * the transport knows nothing about JSON. Defenses at this layer,
 * because everything past it trusts its framing:
 *
 *  - lines above max_line_bytes close the connection after one error
 *    line (an unbounded line would otherwise grow the read buffer
 *    without limit);
 *  - SIGPIPE cannot kill the process (sends use MSG_NOSIGNAL);
 *  - Stop() wakes the acceptor via the pipe and shuts down every live
 *    connection socket, so no thread is left blocked in read().
 *
 * The handler returning false (the wire "shutdown" op) still gets its
 * response flushed, then the server records the request; the host
 * process polls ShutdownRequested() and runs its drain sequence.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cenn {

/** Transport configuration. */
struct TcpServerOptions {
  /** Bind address; loopback by default (no remote exposure). */
  std::string host = "127.0.0.1";

  /** Port; 0 = kernel-assigned (read back via Port()). */
  int port = 0;

  /** listen(2) backlog. */
  int backlog = 64;

  /** Longest accepted request line, newline included. */
  std::size_t max_line_bytes = 1 << 20;
};

/** Line-oriented TCP server (see file comment). */
class TcpServer
{
  public:
    /**
     * Handles one request line (no newline) and fills one response
     * line (no newline). Returning false requests host shutdown.
     * Called concurrently from connection threads.
     */
    using Handler = std::function<bool(const std::string&, std::string*)>;

    /** Optional hook invoked once per accepted connection. */
    using ConnectionHook = std::function<void()>;

    TcpServer(TcpServerOptions options, Handler handler,
              ConnectionHook on_connection = nullptr);

    /** Stops if still running. */
    ~TcpServer();

    TcpServer(const TcpServer&) = delete;
    TcpServer& operator=(const TcpServer&) = delete;

    /**
     * Binds, listens and starts the acceptor. Returns false with a
     * diagnostic in `error` when the socket cannot be set up.
     */
    bool Start(std::string* error);

    /** The bound port (after Start; resolves port 0). */
    int Port() const { return port_; }

    /** True once a handler returned false (wire shutdown). */
    bool ShutdownRequested() const { return shutdown_requested_.load(); }

    /**
     * Stops accepting, unblocks every connection socket and waits for
     * all connection threads to finish. Idempotent; in-flight handler
     * calls complete first.
     */
    void Stop();

    /** Connections accepted over the server's lifetime. */
    std::uint64_t ConnectionsAccepted() const
    {
        return connections_.load();
    }

  private:
    void AcceptLoop();
    void ConnectionLoop(int fd);

    TcpServerOptions options_;
    Handler handler_;
    ConnectionHook on_connection_;

    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};
    int port_ = 0;

    std::thread acceptor_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdown_requested_{false};
    std::atomic<std::uint64_t> connections_{0};

    /** Guards the live-connection table and count. */
    std::mutex conn_mu_;
    std::condition_variable conn_cv_;
    std::size_t active_conns_ = 0;
    std::vector<int> conn_fds_;

    bool started_ = false;
    bool stopped_ = false;
};

}  // namespace cenn

#endif  // CENN_SERVE_TCP_SERVER_H_
