#include "serve/wire.h"

#include <cstdio>

namespace cenn {

const char*
ServeErrorCodeName(ServeErrorCode code)
{
  switch (code) {
    case ServeErrorCode::kParse:
      return "parse";
    case ServeErrorCode::kBadOp:
      return "bad_op";
    case ServeErrorCode::kInvalid:
      return "invalid";
    case ServeErrorCode::kQuota:
      return "quota";
    case ServeErrorCode::kBusy:
      return "busy";
    case ServeErrorCode::kDraining:
      return "draining";
    case ServeErrorCode::kUnknownJob:
      return "unknown_job";
  }
  return "unknown";
}

JsonWriter::JsonWriter() : out_("{") {}

void
JsonWriter::Key(const std::string& key)
{
  if (!first_) {
    out_ += ',';
  }
  first_ = false;
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
}

JsonWriter&
JsonWriter::String(const std::string& key, const std::string& value)
{
  Key(key);
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter&
JsonWriter::Number(const std::string& key, double value)
{
  Key(key);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter&
JsonWriter::Int(const std::string& key, std::int64_t value)
{
  Key(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter&
JsonWriter::U64Str(const std::string& key, std::uint64_t value)
{
  Key(key);
  out_ += '"';
  out_ += std::to_string(value);
  out_ += '"';
  return *this;
}

JsonWriter&
JsonWriter::Bool(const std::string& key, bool value)
{
  Key(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter&
JsonWriter::Raw(const std::string& key, const std::string& json)
{
  Key(key);
  out_ += json;
  return *this;
}

std::string
JsonWriter::Finish()
{
  out_ += '}';
  return std::move(out_);
}

std::string
JsonWriter::Escape(const std::string& text)
{
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter
OkResponse(const std::string& op)
{
  JsonWriter w;
  w.String("schema", kServeSchema).Bool("ok", true).String("op", op);
  return w;
}

std::string
ErrorResponse(const std::string& op, ServeErrorCode code,
              const std::string& message, int retry_after_ms)
{
  JsonWriter w;
  w.String("schema", kServeSchema)
      .Bool("ok", false)
      .String("op", op)
      .String("error", ServeErrorCodeName(code))
      .String("message", message);
  if (retry_after_ms >= 0) {
    w.Int("retry_after_ms", retry_after_ms);
  }
  return w.Finish();
}

}  // namespace cenn
