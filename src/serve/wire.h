#ifndef CENN_SERVE_WIRE_H_
#define CENN_SERVE_WIRE_H_

/**
 * @file
 * The cenn.serve.v1 wire vocabulary: response construction.
 *
 * Requests are newline-delimited JSON objects parsed with
 * serve/json.h; responses are built field-by-field through JsonWriter
 * (no DOM round-trip) and always carry:
 *
 *   {"schema":"cenn.serve.v1","ok":true|false,"op":"<echoed op>", ...}
 *
 * Failures add `"error":"<code>"` and `"message":"<human text>"`;
 * rejections the client should retry (quota, busy) also add
 * `"retry_after_ms":N`. Error codes are a closed set (see
 * ServeErrorCode) so clients can switch on them without parsing
 * message text.
 *
 * 64-bit quantities (checksums, seeds) are rendered as decimal
 * *strings* — a JSON number is a double and silently rounds above
 * 2^53, which would corrupt exactly the values the protocol exists to
 * compare.
 */

#include <cstdint>
#include <string>

namespace cenn {

/** Protocol identifier stamped on every response line. */
inline constexpr const char* kServeSchema = "cenn.serve.v1";

/** Closed set of machine-readable failure codes. */
enum class ServeErrorCode {
  kParse = 0,       ///< request line is not valid JSON / not an object
  kBadOp = 1,       ///< missing or unknown "op"
  kInvalid = 2,     ///< well-formed request with unacceptable contents
  kQuota = 3,       ///< tenant at its in-flight quota (retryable)
  kBusy = 4,        ///< server at capacity (retryable)
  kDraining = 5,    ///< server is shutting down; no new work
  kUnknownJob = 6,  ///< "job" does not name a known job id
};

/** Wire spelling of a code ("parse", "bad_op", "quota", ...). */
const char* ServeErrorCodeName(ServeErrorCode code);

/**
 * Appends JSON fields to one flat object, inserting commas and
 * escaping strings. Begin is implicit; Finish() closes the object and
 * yields the line (without the trailing newline — framing belongs to
 * the transport).
 */
class JsonWriter
{
  public:
    JsonWriter();

    JsonWriter& String(const std::string& key, const std::string& value);
    JsonWriter& Number(const std::string& key, double value);
    JsonWriter& Int(const std::string& key, std::int64_t value);
    /** 64-bit value as a decimal string (see file comment). */
    JsonWriter& U64Str(const std::string& key, std::uint64_t value);
    JsonWriter& Bool(const std::string& key, bool value);
    /** Pre-serialized JSON (nested object/array) verbatim. */
    JsonWriter& Raw(const std::string& key, const std::string& json);

    std::string Finish();

    /** JSON string-escapes `text` (quotes not included). */
    static std::string Escape(const std::string& text);

  private:
    void Key(const std::string& key);

    std::string out_;
    bool first_ = true;
};

/** A writer pre-stamped {"schema":...,"ok":true,"op":op}. */
JsonWriter OkResponse(const std::string& op);

/**
 * A complete error line for `op` with `code` and `message`;
 * `retry_after_ms` >= 0 adds the retry hint field.
 */
std::string ErrorResponse(const std::string& op, ServeErrorCode code,
                          const std::string& message,
                          int retry_after_ms = -1);

}  // namespace cenn

#endif  // CENN_SERVE_WIRE_H_
