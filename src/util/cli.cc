#include "util/cli.h"

#include <cstdlib>

#include "util/logging.h"

namespace cenn {

CliFlags::CliFlags(int argc, char** argv)
{
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::string
CliFlags::GetString(const std::string& name, const std::string& def)
{
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t
CliFlags::GetInt(const std::string& name, std::int64_t def)
{
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return def;
  }
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') {
    CENN_FATAL("flag --", name, " expects an integer, got '", it->second, "'");
  }
  return v;
}

double
CliFlags::GetDouble(const std::string& name, double def)
{
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return def;
  }
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    CENN_FATAL("flag --", name, " expects a number, got '", it->second, "'");
  }
  return v;
}

bool
CliFlags::GetBool(const std::string& name, bool def)
{
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return def;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no") {
    return false;
  }
  CENN_FATAL("flag --", name, " expects a boolean, got '", v, "'");
}

void
CliFlags::Validate() const
{
  for (const auto& [name, value] : values_) {
    if (!queried_.contains(name)) {
      CENN_FATAL("unknown flag --", name);
    }
  }
}

}  // namespace cenn
