#ifndef CENN_UTIL_CLI_H_
#define CENN_UTIL_CLI_H_

/**
 * @file
 * Minimal command-line flag parser for the example and bench programs.
 *
 * Accepts flags of the form `--name=value` or `--name value`, plus bare
 * `--name` for booleans. Unknown flags are fatal so that typos in
 * experiment scripts fail loudly.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cenn {

/** Parsed command-line flags with typed accessors and defaults. */
class CliFlags
{
  public:
    /**
     * Parses argv. Flags must be registered (via the Get* default calls
     * in `allowed`) before Validate() is called; positional arguments
     * are collected in order.
     */
    CliFlags(int argc, char** argv);

    /** Returns the string flag value or `def` when absent. */
    std::string GetString(const std::string& name, const std::string& def);

    /** Returns the integer flag value or `def`; fatal on parse failure. */
    std::int64_t GetInt(const std::string& name, std::int64_t def);

    /** Returns the double flag value or `def`; fatal on parse failure. */
    double GetDouble(const std::string& name, double def);

    /** Returns the boolean flag (bare `--flag` means true) or `def`. */
    bool GetBool(const std::string& name, bool def);

    /** Positional (non-flag) arguments in order of appearance. */
    const std::vector<std::string>& Positional() const { return positional_; }

    /** Fatal if any provided flag was never queried (catches typos). */
    void Validate() const;

  private:
    std::map<std::string, std::string> values_;
    mutable std::map<std::string, bool> queried_;
    std::vector<std::string> positional_;
};

}  // namespace cenn

#endif  // CENN_UTIL_CLI_H_
