#include "util/common_options.h"

#include <cstdlib>
#include <mutex>

#include "util/logging.h"

namespace cenn {

namespace {

/** Sentinel marking "flag not given" (no legal value collides). */
const std::string kUnsetFlag = "\x01";

/**
 * Folds one legacy engine-selection flag into the policy: applied
 * only when given, with the once-per-process deprecation warning
 * pointing at the --exec spelling.
 */
void
ApplyLegacyEngineFlag(CliFlags& flags, const char* flag,
                      const char* exec_key, std::string* target)
{
  const std::string value = flags.GetString(flag, kUnsetFlag);
  if (value == kUnsetFlag) {
    return;
  }
  WarnDeprecatedOnce(std::string("--") + flag,
                     std::string("--exec=...:") + exec_key + "=" + value);
  *target = value;
}

}  // namespace

CommonOptions
ParseCommonOptions(CliFlags& flags, unsigned groups, CommonOptions defaults)
{
  CommonOptions opts = std::move(defaults);
  if ((groups & kEngineFlags) != 0) {
    // Precedence: defaults < legacy long flags < --exec < CENN_EXEC.
    ApplyLegacyEngineFlag(flags, "engine", "engine", &opts.exec.engine);
    ApplyLegacyEngineFlag(flags, "precision", "precision",
                          &opts.exec.precision);
    ApplyLegacyEngineFlag(flags, "memory", "memory", &opts.exec.memory);
    ApplyLegacyEngineFlag(flags, "kernel-path", "kernel",
                          &opts.exec.kernel_path);
    // Legacy manifests spelled the functional precisions as engines;
    // keep that working through the flag alias too.
    if (opts.exec.engine == "double" || opts.exec.engine == "fixed") {
      opts.exec.precision = opts.exec.engine;
      opts.exec.engine = "functional";
    }
    const std::string exec_text = flags.GetString("exec", "");
    std::string error;
    if (!exec_text.empty() &&
        !ParseExecPolicy(exec_text, &opts.exec, &error)) {
      CENN_FATAL("--exec: ", error);
    }
    if (const char* env = std::getenv("CENN_EXEC");
        env != nullptr && env[0] != '\0') {
      if (!ParseExecPolicy(env, &opts.exec, &error)) {
        CENN_FATAL("CENN_EXEC: ", error);
      }
      static std::once_flag logged;
      std::call_once(logged, [env] {
        CENN_INFORM("CENN_EXEC override active: ", env);
      });
    }
    if (!ValidateExecPolicy(opts.exec, &error)) {
      CENN_FATAL("exec policy: ", error);
    }
  }
  if ((groups & kThreadsFlag) != 0) {
    const std::int64_t sentinel = -987654;
    const std::int64_t given = flags.GetInt("threads", sentinel);
    opts.threads_given = given != sentinel;
    if (opts.threads_given) {
      opts.threads = static_cast<int>(given);
    }
    if (opts.threads < 1) {
      CENN_FATAL("--threads must be >= 1, got ", opts.threads);
    }
  }
  if ((groups & kStatsFlags) != 0) {
    opts.stats_out = flags.GetString("stats-out", opts.stats_out);
  }
  if ((groups & kMetricsFlags) != 0) {
    opts.metrics_out = flags.GetString("metrics-out", opts.metrics_out);
    opts.metrics_interval_ms = static_cast<int>(flags.GetInt(
        "metrics-interval-ms",
        static_cast<std::int64_t>(opts.metrics_interval_ms)));
    if (opts.metrics_interval_ms < 1) {
      CENN_FATAL("--metrics-interval-ms must be >= 1, got ",
                 opts.metrics_interval_ms);
    }
  }
  if ((groups & kTraceFlags) != 0) {
    opts.trace_out = flags.GetString("trace-out", opts.trace_out);
    opts.trace_categories =
        flags.GetString("trace-categories", opts.trace_categories);
    opts.trace_capacity = static_cast<std::size_t>(flags.GetInt(
        "trace-capacity", static_cast<std::int64_t>(opts.trace_capacity)));
  }
  if ((groups & kProfileFlags) != 0) {
    opts.progress = flags.GetBool("progress", opts.progress);
    opts.self_profile = flags.GetBool("self-profile", opts.self_profile);
  }
  if ((groups & kGuardFlags) != 0) {
    opts.guard = flags.GetBool("guard", opts.guard);
    opts.guard_max_abs =
        flags.GetDouble("guard-max-abs", opts.guard_max_abs);
    opts.guard_max_rms =
        flags.GetDouble("guard-max-rms", opts.guard_max_rms);
    opts.guard_max_sat = static_cast<std::uint64_t>(flags.GetInt(
        "guard-max-sat", static_cast<std::int64_t>(opts.guard_max_sat)));
    opts.guard_check_every = static_cast<std::uint64_t>(
        flags.GetInt("guard-check-every",
                     static_cast<std::int64_t>(opts.guard_check_every)));
    if (opts.guard_max_abs < 0.0 || opts.guard_max_rms < 0.0) {
      CENN_FATAL("--guard-max-abs / --guard-max-rms must be >= 0");
    }
    if (opts.guard_check_every == 0) {
      CENN_FATAL("--guard-check-every must be >= 1");
    }
  }
  return opts;
}

std::string
CommonOptionsHelp(unsigned groups)
{
  std::string out;
  if ((groups & kEngineFlags) != 0) {
    out +=
        "  --exec=POLICY                unified execution policy: colon-\n"
        "                               separated engine|precision|memory|\n"
        "                               kernel tokens plus shards=N, pin=\n"
        "                               none|cores|numa and block=T, e.g.\n"
        "                               --exec=soa:simd:shards=8:pin=numa\n"
        "                               (CENN_EXEC env overrides; see\n"
        "                               docs/runtime.md)\n"
        "  --engine=functional|soa|arch deprecated alias of --exec\n"
        "  --precision=double|fixed|float  deprecated alias of --exec\n"
        "  --memory=ddr3|hmc-int|hmc-ext  deprecated alias of --exec\n"
        "  --kernel-path=auto|scalar|blocked|simd  deprecated alias of\n"
        "                               --exec (CENN_KERNEL_PATH still\n"
        "                               overrides; simd ISA via\n"
        "                               CENN_SIMD_ISA)\n";
  }
  if ((groups & kThreadsFlag) != 0) {
    out += "  --threads=N                  worker threads\n";
  }
  if ((groups & kStatsFlags) != 0) {
    out +=
        "  --stats-out=FILE             write named-stat dump (text; .csv\n"
        "                               and .json extensions switch format)\n";
  }
  if ((groups & kMetricsFlags) != 0) {
    out +=
        "  --metrics-out=PATH           stream live JSONL metrics samples\n"
        "                               (file; a directory of per-job\n"
        "                               streams in cenn_batch)\n"
        "  --metrics-interval-ms=N      metrics sampling period (250)\n";
  }
  if ((groups & kTraceFlags) != 0) {
    out +=
        "  --trace-out=FILE             write Chrome trace_event JSON\n"
        "  --trace-categories=LIST      step,conv,lut,dram,checkpoint,\n"
        "                               solver,counter or all/none\n"
        "  --trace-capacity=N           trace ring size in events (2^20)\n";
  }
  if ((groups & kProfileFlags) != 0) {
    out +=
        "  --progress                   periodic steps/s + ETA heartbeat\n"
        "  --self-profile               print wall-clock self-profile\n";
  }
  if ((groups & kGuardFlags) != 0) {
    out +=
        "  --guard                      attach a numerical-health guard\n"
        "  --guard-max-abs=X            trip when any |state| > X (1e4;\n"
        "                               0 disables)\n"
        "  --guard-max-rms=X            trip when the RMS norm > X (0=off)\n"
        "  --guard-max-sat=N            trip when Fixed32 saturation\n"
        "                               events exceed N (0=off)\n"
        "  --guard-check-every=N        scan cadence in steps (16)\n";
  }
  return out;
}

}  // namespace cenn
