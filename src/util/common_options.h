#ifndef CENN_UTIL_COMMON_OPTIONS_H_
#define CENN_UTIL_COMMON_OPTIONS_H_

/**
 * @file
 * CommonOptions — the command-line flags shared by the cenn tools.
 *
 * cenn_run and cenn_batch (and any future driver) accept the same
 * engine-selection and observability flags. Each tool used to parse
 * its own copy, which is how `--stats` vs `--stats-out` drifted apart;
 * ParseCommonOptions is now the single implementation. Tools opt into
 * flag groups so a flag that a tool cannot honor stays unknown (and
 * therefore fatal via CliFlags::Validate) instead of being silently
 * swallowed.
 *
 * Values are kept as strings here — src/util sits below the kernel
 * and program layers, so canonicalization (legacy engine spellings,
 * precision defaults) happens in runtime/engine_factory.h.
 *
 * Execution selection is the unified ExecPolicy (util/exec_policy.h):
 * `--exec=soa:simd:shards=8:pin=numa` is the canonical spelling, the
 * long flags (--engine, --precision, --memory, --kernel-path) still
 * parse as aliases with a once-per-process deprecation warning, and
 * the CENN_EXEC environment variable overrides whichever fields it
 * mentions (logged once). Precedence: defaults < legacy flags <
 * --exec < CENN_EXEC.
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/cli.h"
#include "util/exec_policy.h"

namespace cenn {

/** Flag groups a tool can opt into (bitwise-or of these). */
enum CommonFlagGroup : unsigned {
  /** --exec plus legacy aliases --engine, --precision, --memory,
   *  --kernel-path */
  kEngineFlags = 1u << 0,

  /** --threads */
  kThreadsFlag = 1u << 1,

  /** --stats-out */
  kStatsFlags = 1u << 2,

  /** --trace-out, --trace-categories, --trace-capacity */
  kTraceFlags = 1u << 3,

  /** --progress, --self-profile */
  kProfileFlags = 1u << 4,

  /** --guard, --guard-max-abs, --guard-max-rms, --guard-max-sat,
   *  --guard-check-every */
  kGuardFlags = 1u << 5,

  /** --metrics-out, --metrics-interval-ms */
  kMetricsFlags = 1u << 6,

  kAllCommonFlags = kEngineFlags | kThreadsFlag | kStatsFlags | kTraceFlags |
                    kProfileFlags | kGuardFlags | kMetricsFlags,
};

/** Parsed values of the shared flags (defaults when not given). */
struct CommonOptions {
  /**
   * How the run executes: engine, precision, memory, kernel path,
   * shards, pinning, temporal-block depth. Assembled from --exec,
   * the legacy long flags and CENN_EXEC; validated, so safe to hand
   * to BuildEngine / ShardTeam directly.
   */
  ExecPolicy exec;

  /** Worker threads (band shards in cenn_run, pool in cenn_batch). */
  int threads = 1;

  /** True when --threads was given explicitly (cenn_run folds it
   *  into exec.shards with a deprecation warning). */
  bool threads_given = false;

  /** Named-stat dump file; .csv/.json extensions switch the format. */
  std::string stats_out;

  /**
   * Live JSONL metrics stream: a file for cenn_run, a directory of
   * per-job `<name>.metrics.jsonl` streams for cenn_batch ("" = off).
   */
  std::string metrics_out;

  /** Sampling period of the metrics stream in milliseconds (>= 1). */
  int metrics_interval_ms = 250;

  /** Chrome trace_event JSON output file. */
  std::string trace_out;

  /** Comma list of trace categories, or "all"/"none". */
  std::string trace_categories = "all";

  /** Trace ring size in events. */
  std::size_t trace_capacity = 1 << 20;

  /** Periodic steps/s + ETA heartbeat on stderr. */
  bool progress = false;

  /** Print a wall-clock self-profile table at exit. */
  bool self_profile = false;

  /**
   * @name Numerical-health guard (src/health)
   * Plain values here (util sits below core); the tools build a
   * HealthGuardConfig from them. Thresholds of 0 disable that check.
   */
  ///@{

  /** Attach a HealthGuard to the run / to every batch job. */
  bool guard = false;

  /** Trip when any |state| exceeds this (0 = off). */
  double guard_max_abs = 1e4;

  /** Trip when the RMS state norm exceeds this (0 = off). */
  double guard_max_rms = 0.0;

  /** Trip when Fixed32 saturation events exceed this (0 = off). */
  std::uint64_t guard_max_sat = 0;

  /** Scan cadence in steps (1 = every slice boundary). */
  std::uint64_t guard_check_every = 16;

  ///@}
};

/**
 * Parses the selected flag groups out of `flags`, starting from
 * `defaults` (lets tools differ on e.g. the default thread count).
 * Does not call flags.Validate() — the tool does, after its own flags.
 */
CommonOptions ParseCommonOptions(CliFlags& flags,
                                 unsigned groups = kAllCommonFlags,
                                 CommonOptions defaults = {});

/**
 * Usage text for the selected groups (one "  --flag  description"
 * line each, newline-terminated) so both tools print identical docs.
 */
std::string CommonOptionsHelp(unsigned groups = kAllCommonFlags);

}  // namespace cenn

#endif  // CENN_UTIL_COMMON_OPTIONS_H_
