#include "util/exec_policy.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <set>
#include <vector>

#include "util/logging.h"

namespace cenn {

namespace {

constexpr const char* kEngines[] = {"functional", "soa", "arch"};
constexpr const char* kPrecisions[] = {"double", "fixed", "float"};
constexpr const char* kMemories[] = {"ddr3", "hmc-int", "hmc-ext"};
constexpr const char* kKernelPaths[] = {"auto", "scalar", "blocked", "simd"};
constexpr const char* kPins[] = {"none", "cores", "numa"};

template <std::size_t N>
bool
OneOf(const std::string& value, const char* const (&choices)[N])
{
  return std::find_if(std::begin(choices), std::end(choices),
                      [&value](const char* c) { return value == c; }) !=
         std::end(choices);
}

template <std::size_t N>
std::string
Join(const char* const (&choices)[N])
{
  std::string out;
  for (const char* c : choices) {
    if (!out.empty()) {
      out += "|";
    }
    out += c;
  }
  return out;
}

/** Parses a positive int; false on junk, zero or overflow. */
bool
ParsePositiveInt(const std::string& value, int* out)
{
  if (value.empty()) {
    return false;
  }
  long long parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return false;
    }
    parsed = parsed * 10 + (c - '0');
    if (parsed > std::numeric_limits<int>::max()) {
      return false;
    }
  }
  if (parsed < 1) {
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

/** One field assignment with set-twice detection. */
bool
SetField(unsigned field, unsigned* seen, std::string* target,
         const std::string& value, const char* name, std::string* error)
{
  if ((*seen & field) != 0) {
    *error = std::string("exec policy sets '") + name + "' twice";
    return false;
  }
  *seen |= field;
  *target = value;
  return true;
}

}  // namespace

bool
ParseExecPolicy(const std::string& text, ExecPolicy* out, std::string* error,
                unsigned* fields)
{
  CENN_ASSERT(out != nullptr && error != nullptr,
              "ParseExecPolicy: null output");
  if (text.empty()) {
    *error = "empty exec policy";
    return false;
  }
  ExecPolicy policy = *out;
  unsigned seen = 0;

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t colon = text.find(':', pos);
    const std::string seg = text.substr(
        pos, colon == std::string::npos ? std::string::npos : colon - pos);
    pos = colon == std::string::npos ? text.size() + 1 : colon + 1;
    if (seg.empty()) {
      *error = "empty segment in exec policy '" + text + "'";
      return false;
    }

    const std::size_t eq = seg.find('=');
    if (eq == std::string::npos) {
      // Bare token: classify by the (disjoint) choice lists.
      if (OneOf(seg, kEngines)) {
        if (!SetField(kExecEngineField, &seen, &policy.engine, seg, "engine",
                      error)) {
          return false;
        }
      } else if (OneOf(seg, kPrecisions)) {
        if (!SetField(kExecPrecisionField, &seen, &policy.precision, seg,
                      "precision", error)) {
          return false;
        }
      } else if (OneOf(seg, kKernelPaths)) {
        if (!SetField(kExecKernelField, &seen, &policy.kernel_path, seg,
                      "kernel", error)) {
          return false;
        }
      } else if (OneOf(seg, kMemories)) {
        if (!SetField(kExecMemoryField, &seen, &policy.memory, seg, "memory",
                      error)) {
          return false;
        }
      } else {
        *error = "unknown exec token '" + seg +
                 "' (engine, precision, kernel path or memory name; or "
                 "key=value with keys engine|precision|memory|kernel|"
                 "shards|pin|block)";
        return false;
      }
      continue;
    }

    const std::string key = seg.substr(0, eq);
    const std::string value = seg.substr(eq + 1);
    if (key == "engine") {
      if (!OneOf(value, kEngines)) {
        *error = "unknown engine '" + value + "' (" + Join(kEngines) + ")";
        return false;
      }
      if (!SetField(kExecEngineField, &seen, &policy.engine, value, "engine",
                    error)) {
        return false;
      }
    } else if (key == "precision") {
      if (!OneOf(value, kPrecisions)) {
        *error = "unknown precision '" + value + "' (" + Join(kPrecisions) +
                 ")";
        return false;
      }
      if (!SetField(kExecPrecisionField, &seen, &policy.precision, value,
                    "precision", error)) {
        return false;
      }
    } else if (key == "memory") {
      if (!OneOf(value, kMemories)) {
        *error = "unknown memory '" + value + "' (" + Join(kMemories) + ")";
        return false;
      }
      if (!SetField(kExecMemoryField, &seen, &policy.memory, value, "memory",
                    error)) {
        return false;
      }
    } else if (key == "kernel" || key == "kernel_path") {
      if (!OneOf(value, kKernelPaths)) {
        *error = "unknown kernel path '" + value + "' (" +
                 Join(kKernelPaths) + ")";
        return false;
      }
      if (!SetField(kExecKernelField, &seen, &policy.kernel_path, value,
                    "kernel", error)) {
        return false;
      }
    } else if (key == "pin") {
      if (!OneOf(value, kPins)) {
        *error = "unknown pin mode '" + value + "' (" + Join(kPins) + ")";
        return false;
      }
      if (!SetField(kExecPinField, &seen, &policy.pin, value, "pin", error)) {
        return false;
      }
    } else if (key == "shards") {
      if ((seen & kExecShardsField) != 0) {
        *error = "exec policy sets 'shards' twice";
        return false;
      }
      if (!ParsePositiveInt(value, &policy.shards)) {
        *error = "shards '" + value + "' is not a positive integer";
        return false;
      }
      seen |= kExecShardsField;
    } else if (key == "block") {
      if ((seen & kExecBlockField) != 0) {
        *error = "exec policy sets 'block' twice";
        return false;
      }
      if (!ParsePositiveInt(value, &policy.block_steps)) {
        *error = "block '" + value + "' is not a positive integer";
        return false;
      }
      seen |= kExecBlockField;
    } else {
      *error = "unknown exec key '" + key +
               "' (engine|precision|memory|kernel|shards|pin|block)";
      return false;
    }
  }

  *out = policy;
  if (fields != nullptr) {
    *fields = seen;
  }
  return true;
}

bool
ValidateExecPolicy(const ExecPolicy& policy, std::string* error)
{
  CENN_ASSERT(error != nullptr, "ValidateExecPolicy: null error");
  if (!OneOf(policy.engine, kEngines)) {
    *error = "unknown engine '" + policy.engine + "' (" + Join(kEngines) +
             ")";
    return false;
  }
  if (!policy.precision.empty() && !OneOf(policy.precision, kPrecisions)) {
    *error = "unknown precision '" + policy.precision + "' (" +
             Join(kPrecisions) + ")";
    return false;
  }
  if (!OneOf(policy.memory, kMemories)) {
    *error = "unknown memory '" + policy.memory + "' (" + Join(kMemories) +
             ")";
    return false;
  }
  if (!OneOf(policy.kernel_path, kKernelPaths)) {
    *error = "unknown kernel path '" + policy.kernel_path + "' (" +
             Join(kKernelPaths) + ")";
    return false;
  }
  if (!OneOf(policy.pin, kPins)) {
    *error = "unknown pin mode '" + policy.pin + "' (" + Join(kPins) + ")";
    return false;
  }
  if (policy.shards < 1) {
    *error = "shards must be >= 1";
    return false;
  }
  if (policy.block_steps < 1) {
    *error = "block must be >= 1";
    return false;
  }
  if (policy.precision == "float" && policy.engine != "soa") {
    *error = "precision 'float' is only available on the soa engine, not '" +
             policy.engine + "'";
    return false;
  }
  if (policy.block_steps > 1) {
    // Temporal blocking steps private band copies with reordered halo
    // exchange; only the LUT-free soa paths carry that contract.
    if (policy.engine != "soa" ||
        (policy.precision != "double" && policy.precision != "float")) {
      *error = "block > 1 (temporal blocking) requires the soa engine at "
               "double or float precision (got engine '" + policy.engine +
               "', precision '" +
               (policy.precision.empty() ? "<default fixed>"
                                         : policy.precision) +
               "')";
      return false;
    }
  }
  return true;
}

std::string
FormatExecPolicy(const ExecPolicy& policy)
{
  std::string out = policy.engine;
  if (!policy.precision.empty()) {
    out += ":" + policy.precision;
  }
  if (policy.memory != "ddr3") {
    out += ":" + policy.memory;
  }
  if (policy.kernel_path != "auto") {
    out += ":" + policy.kernel_path;
  }
  if (policy.shards != 1) {
    out += ":shards=" + std::to_string(policy.shards);
  }
  if (policy.pin != "none") {
    out += ":pin=" + policy.pin;
  }
  if (policy.block_steps != 1) {
    out += ":block=" + std::to_string(policy.block_steps);
  }
  return out;
}

void
WarnDeprecatedOnce(const std::string& legacy, const std::string& replacement)
{
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>();
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!warned->insert(legacy).second) {
      return;
    }
  }
  CENN_WARN("deprecated: ", legacy, " - use ", replacement);
}

}  // namespace cenn
