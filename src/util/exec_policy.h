#ifndef CENN_UTIL_EXEC_POLICY_H_
#define CENN_UTIL_EXEC_POLICY_H_

/**
 * @file
 * ExecPolicy — the one value type that says *how* a solver run
 * executes.
 *
 * Engine selection, numeric precision, kernel path, band-shard count,
 * worker-team pinning and temporal-block depth used to travel as five
 * ad-hoc parameters (`--engine`, `--kernel-path`, `--shards`, env
 * overrides, per-tool flag groups) that every frontend re-plumbed.
 * ExecPolicy replaces them with a single parse/validate/print spelling
 * shared by CLI flags (`--exec=...`), manifest keys (`exec=...`), the
 * serve submit JSON (`"exec": "..."`) and the CENN_EXEC environment
 * override.
 *
 * Grammar: colon-separated segments, each either `key=value` or a
 * bare token whose class is unambiguous:
 *
 *     --exec=soa:simd:shards=8:pin=numa
 *     --exec=functional:double
 *     --exec=soa:double:blocked:shards=4:block=8
 *
 * Keys: engine, precision, memory, kernel (alias kernel_path),
 * shards, pin, block. Bare tokens: engine names (functional|soa|
 * arch), precisions (double|fixed|float), kernel paths (auto|scalar|
 * blocked|simd) and memory systems (ddr3|hmc-int|hmc-ext). A bare
 * `double` or `fixed` sets the *precision* — combined with the
 * functional default engine this matches the legacy manifest meaning
 * of `engine=double` exactly.
 *
 * Values are kept as strings (src/util sits below the kernel layer);
 * canonicalization to enums happens in runtime/engine_factory.h. The
 * choice lists here must stay in sync with kernels/kernel_path.h and
 * engine_factory — tests/test_engine.cc asserts the agreement.
 */

#include <string>

namespace cenn {

/** How a run executes: backend, kernels and team shape. */
struct ExecPolicy {
  /** "functional", "soa" or "arch". */
  std::string engine = "functional";

  /** "double", "fixed" or "float"; empty = engine default (fixed). */
  std::string precision;

  /** Arch memory system: "ddr3", "hmc-int" or "hmc-ext". */
  std::string memory = "ddr3";

  /** SoA stepping kernels: "auto", "scalar", "blocked" or "simd". */
  std::string kernel_path = "auto";

  /** Band-parallel worker-team size (1 = serial). */
  int shards = 1;

  /** Worker pinning: "none", "cores" or "numa" (round-robin nodes). */
  std::string pin = "none";

  /**
   * Temporal-block depth: Euler steps each worker advances its
   * cache-resident band copy per halo exchange (1 = classic two-phase
   * stepping). >1 requires the soa engine at double/float — the
   * LUT-light paths where the ULP contract permits reordered halo
   * exchange (docs/runtime.md).
   */
  int block_steps = 1;

  bool operator==(const ExecPolicy&) const = default;
};

/** Bitmask of ExecPolicy fields a parse explicitly set. */
enum ExecPolicyField : unsigned {
  kExecEngineField = 1u << 0,
  kExecPrecisionField = 1u << 1,
  kExecMemoryField = 1u << 2,
  kExecKernelField = 1u << 3,
  kExecShardsField = 1u << 4,
  kExecPinField = 1u << 5,
  kExecBlockField = 1u << 6,
};

/**
 * Parses the grammar above into `*out`, overriding only the fields
 * the text mentions (merge semantics: seed `*out` with defaults or a
 * lower-precedence policy first). Setting the same field twice in one
 * spec is an error. Returns false with a one-line `*error`; on
 * success `*fields` (when non-null) receives the ExecPolicyField mask
 * of what was set. Parsing checks per-field choices; cross-field
 * rules live in ValidateExecPolicy.
 */
bool ParseExecPolicy(const std::string& text, ExecPolicy* out,
                     std::string* error, unsigned* fields = nullptr);

/**
 * Whole-policy validation: every field one of its choices, shards and
 * block >= 1, float precision soa-only, block > 1 only on soa at
 * double/float. A policy passing this never trips CENN_FATAL in
 * NormalizeEngineRequest. Returns false with a one-line `*error`.
 */
bool ValidateExecPolicy(const ExecPolicy& policy, std::string* error);

/**
 * Canonical spelling: engine first, then every non-default field
 * ("soa:double:simd:shards=8:pin=numa:block=4"). Round-trips:
 * parsing the result reproduces `policy` exactly.
 */
std::string FormatExecPolicy(const ExecPolicy& policy);

/**
 * Logs "deprecated: <legacy> - use <replacement>" once per process
 * per distinct `legacy` string — the shared warn-once used by every
 * frontend that still accepts a legacy spelling (--engine,
 * --kernel-path, manifest engine=/shards= keys, cenn_run --threads).
 */
void WarnDeprecatedOnce(const std::string& legacy,
                        const std::string& replacement);

}  // namespace cenn

#endif  // CENN_UTIL_EXEC_POLICY_H_
