#include "util/io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <tuple>

#include "util/logging.h"

namespace cenn {
namespace {

/** Returns (min, max) over the field, ignoring non-finite values. */
std::pair<double, double>
DataRange(std::span<const double> field)
{
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : field) {
    if (!std::isfinite(v)) {
      continue;
    }
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo > hi) {
    lo = 0.0;
    hi = 1.0;
  }
  if (hi == lo) {
    hi = lo + 1.0;
  }
  return {lo, hi};
}

}  // namespace

bool
WritePgm(const std::string& path, std::span<const double> field,
         std::size_t rows, std::size_t cols, double lo, double hi)
{
  if (field.size() != rows * cols) {
    CENN_FATAL("WritePgm: field size ", field.size(), " != ", rows, "x", cols);
  }
  if (lo >= hi) {
    std::tie(lo, hi) = DataRange(field);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    CENN_WARN("WritePgm: cannot open ", path);
    return false;
  }
  std::fprintf(f, "P5\n%zu %zu\n255\n", cols, rows);
  std::vector<unsigned char> line(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      double v = field[r * cols + c];
      if (!std::isfinite(v)) {
        v = lo;
      }
      const double t = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
      line[c] = static_cast<unsigned char>(std::lround(t * 255.0));
    }
    std::fwrite(line.data(), 1, cols, f);
  }
  std::fclose(f);
  return true;
}

bool
WriteCsv(const std::string& path, const std::vector<std::string>& header,
         const std::vector<std::vector<double>>& rows)
{
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    CENN_WARN("WriteCsv: cannot open ", path);
    return false;
  }
  if (!header.empty()) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      std::fprintf(f, "%s%s", header[i].c_str(),
                   i + 1 < header.size() ? "," : "\n");
    }
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::fprintf(f, "%.17g%s", row[i], i + 1 < row.size() ? "," : "\n");
    }
  }
  std::fclose(f);
  return true;
}

std::string
AsciiHeatmap(std::span<const double> field, std::size_t rows, std::size_t cols,
             std::size_t max_side)
{
  if (field.size() != rows * cols || rows == 0 || cols == 0) {
    return "";
  }
  static const char kRamp[] = " .:-=+*#%@";
  const std::size_t n_ramp = sizeof(kRamp) - 2;

  const auto [lo, hi] = DataRange(field);
  const std::size_t out_rows = std::min(rows, max_side);
  const std::size_t out_cols = std::min(cols, max_side);

  std::string out;
  out.reserve(out_rows * (out_cols + 1));
  for (std::size_t r = 0; r < out_rows; ++r) {
    const std::size_t rr = r * rows / out_rows;
    for (std::size_t c = 0; c < out_cols; ++c) {
      const std::size_t cc = c * cols / out_cols;
      double v = field[rr * cols + cc];
      if (!std::isfinite(v)) {
        v = lo;
      }
      const double t = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
      out += kRamp[static_cast<std::size_t>(t * static_cast<double>(n_ramp))];
    }
    out += '\n';
  }
  return out;
}

}  // namespace cenn
