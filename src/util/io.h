#ifndef CENN_UTIL_IO_H_
#define CENN_UTIL_IO_H_

/**
 * @file
 * Output helpers for example programs: PGM images of 2-D fields,
 * CSV dumps of time series, and a coarse ASCII heatmap renderer.
 */

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cenn {

/**
 * Writes a 2-D field (row-major, `rows x cols`) as an 8-bit binary PGM.
 *
 * Values are linearly rescaled from [lo, hi] to [0, 255]; when lo >= hi
 * the range is taken from the data itself.
 *
 * @return true on success, false on I/O failure (a warning is logged).
 */
bool WritePgm(const std::string& path, std::span<const double> field,
              std::size_t rows, std::size_t cols, double lo = 0.0,
              double hi = -1.0);

/**
 * Writes rows of doubles to a CSV file with an optional header line.
 *
 * @return true on success.
 */
bool WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<double>>& rows);

/**
 * Renders a 2-D field as an ASCII heatmap (downsampled to at most
 * `max_side` characters per side) using a luminance ramp.
 */
std::string AsciiHeatmap(std::span<const double> field, std::size_t rows,
                         std::size_t cols, std::size_t max_side = 48);

}  // namespace cenn

#endif  // CENN_UTIL_IO_H_
