#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

#include <atomic>

namespace cenn {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarn};

}  // namespace

LogLevel
GetLogLevel()
{
  return g_log_level.load(std::memory_order_relaxed);
}

void
SetLogLevel(LogLevel level)
{
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal {

[[noreturn]] void
FatalImpl(const char* file, int line, const std::string& msg)
{
  std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
  std::fflush(stderr);
  std::exit(1);
}

[[noreturn]] void
PanicImpl(const char* file, int line, const std::string& msg)
{
  std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
  std::fflush(stderr);
  std::abort();
}

void
LogImpl(LogLevel level, const std::string& msg)
{
  if (level > g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  const char* tag = "info";
  switch (level) {
    case LogLevel::kWarn:
      tag = "warn";
      break;
    case LogLevel::kInform:
      tag = "info";
      break;
    case LogLevel::kDebug:
      tag = "debug";
      break;
    default:
      break;
  }
  std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

}  // namespace internal
}  // namespace cenn
