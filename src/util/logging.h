#ifndef CENN_UTIL_LOGGING_H_
#define CENN_UTIL_LOGGING_H_

/**
 * @file
 * Status and error reporting for the CeNN-DES library.
 *
 * Follows the gem5 fatal/panic distinction:
 *  - CENN_FATAL: the simulation cannot continue because of a *user* error
 *    (bad configuration, invalid argument). Exits with code 1.
 *  - CENN_PANIC: an internal invariant was violated (a library bug).
 *    Calls std::abort() so a core dump / debugger can catch it.
 *  - CENN_WARN / CENN_INFORM: non-terminating status messages.
 */

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace cenn {

/** Verbosity levels for non-terminating messages. */
enum class LogLevel : std::uint8_t {
  kSilent = 0,
  kWarn = 1,
  kInform = 2,
  kDebug = 3,
};

/** Global log verbosity; messages above this level are suppressed. */
LogLevel GetLogLevel();

/** Sets the global log verbosity. Thread-safe (atomic). */
void SetLogLevel(LogLevel level);

namespace internal {

/** Prints "fatal: <msg>" to stderr and exits with code 1. */
[[noreturn]] void FatalImpl(const char* file, int line, const std::string& msg);

/** Prints "panic: <msg>" to stderr and aborts. */
[[noreturn]] void PanicImpl(const char* file, int line, const std::string& msg);

/** Prints a leveled message ("warn:", "info:", "debug:") to stderr. */
void LogImpl(LogLevel level, const std::string& msg);

/** Builds a message from stream-style arguments. */
template <typename... Args>
std::string
Format(Args&&... args)
{
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

}  // namespace internal
}  // namespace cenn

/** Terminates on unrecoverable user error (bad config / arguments). */
#define CENN_FATAL(...) \
  ::cenn::internal::FatalImpl(__FILE__, __LINE__, \
                              ::cenn::internal::Format(__VA_ARGS__))

/** Terminates on violated internal invariant (library bug). */
#define CENN_PANIC(...) \
  ::cenn::internal::PanicImpl(__FILE__, __LINE__, \
                              ::cenn::internal::Format(__VA_ARGS__))

/** Panics when `cond` is false; always evaluated (not compiled out). */
#define CENN_ASSERT(cond, ...) \
  do { \
    if (!(cond)) { \
      ::cenn::internal::PanicImpl( \
          __FILE__, __LINE__, \
          ::cenn::internal::Format("assertion failed: " #cond " ", \
                                   ##__VA_ARGS__)); \
    } \
  } while (false)

/** Non-terminating warning about questionable but survivable conditions. */
#define CENN_WARN(...) \
  ::cenn::internal::LogImpl(::cenn::LogLevel::kWarn, \
                            ::cenn::internal::Format(__VA_ARGS__))

/** Informative status message. */
#define CENN_INFORM(...) \
  ::cenn::internal::LogImpl(::cenn::LogLevel::kInform, \
                            ::cenn::internal::Format(__VA_ARGS__))

/**
 * Rate-limited logging for hot loops (per-step warnings on
 * million-step runs must not flood stderr). Each macro expansion is
 * one independent call site with its own atomic occurrence counter.
 *
 * CENN_LOG_EVERY_N(level, n, ...): logs occurrences 1, n+1, 2n+1, …
 * of this site; suppressed messages are counted and the emitted line
 * is suffixed with "(logged 1/n)" so readers know sampling happened.
 */
#define CENN_LOG_EVERY_N(level, n, ...) \
  do { \
    static ::std::atomic<::std::uint64_t> cenn_log_count_{0}; \
    const ::std::uint64_t cenn_log_seen_ = \
        cenn_log_count_.fetch_add(1, ::std::memory_order_relaxed); \
    if (cenn_log_seen_ % static_cast<::std::uint64_t>(n) == 0) { \
      ::cenn::internal::LogImpl( \
          level, ::cenn::internal::Format( \
                     __VA_ARGS__, \
                     (n) > 1 ? " (logged 1/" #n ")" : "")); \
    } \
  } while (false)

/** Warns the first time this site executes; silent afterwards. */
#define CENN_WARN_ONCE(...) \
  do { \
    static ::std::atomic<bool> cenn_log_fired_{false}; \
    if (!cenn_log_fired_.exchange(true, ::std::memory_order_relaxed)) { \
      ::cenn::internal::LogImpl(::cenn::LogLevel::kWarn, \
                                ::cenn::internal::Format(__VA_ARGS__)); \
    } \
  } while (false)

/** Warning logged on the 1st, (n+1)th, (2n+1)th, … hit of this site. */
#define CENN_WARN_EVERY_N(n, ...) \
  CENN_LOG_EVERY_N(::cenn::LogLevel::kWarn, n, __VA_ARGS__)

/** Debug message logged once per call site (CENN_DEBUG_ONCE style). */
#define CENN_DEBUG_ONCE(...) \
  do { \
    static ::std::atomic<bool> cenn_log_fired_{false}; \
    if (!cenn_log_fired_.exchange(true, ::std::memory_order_relaxed)) { \
      ::cenn::internal::LogImpl(::cenn::LogLevel::kDebug, \
                                ::cenn::internal::Format(__VA_ARGS__)); \
    } \
  } while (false)

#endif  // CENN_UTIL_LOGGING_H_
