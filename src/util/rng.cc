#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace cenn {
namespace {

/** SplitMix64 step used to expand the user seed into engine state. */
std::uint64_t
SplitMix64(std::uint64_t& x)
{
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t
Rotl(std::uint64_t x, int k)
{
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

std::uint64_t
Rng::NextU64()
{
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double
Rng::NextDouble()
{
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double
Rng::Uniform(double lo, double hi)
{
  return lo + (hi - lo) * NextDouble();
}

double
Rng::Gaussian()
{
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double
Rng::Gaussian(double mean, double stddev)
{
  return mean + stddev * Gaussian();
}

std::uint64_t
Rng::NextBelow(std::uint64_t n)
{
  CENN_ASSERT(n > 0, "NextBelow requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

Rng
Rng::Split(std::uint64_t stream_id) const
{
  // Mix the full parent state with the stream id through SplitMix64 so
  // child streams differ even for adjacent ids and for parents whose
  // states differ in few bits. The parent is not advanced.
  std::uint64_t sm = state_[0];
  sm ^= Rotl(state_[1], 13) ^ Rotl(state_[2], 29) ^ Rotl(state_[3], 41);
  sm ^= (stream_id + 1) * 0x9e3779b97f4a7c15ULL;
  return Rng(SplitMix64(sm));
}

bool
Rng::Bernoulli(double p)
{
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

}  // namespace cenn
