#ifndef CENN_UTIL_RNG_H_
#define CENN_UTIL_RNG_H_

/**
 * @file
 * Deterministic, seedable random number generation.
 *
 * All stochastic choices in the library (initial conditions, noise
 * injection, synthetic workloads) go through Rng so that every experiment
 * is reproducible from its seed. The engine is xoshiro256**, which is
 * fast, has a 256-bit state, and is identical across platforms (unlike
 * std::normal_distribution, whose output is implementation-defined).
 */

#include <cstdint>

namespace cenn {

/** Deterministic xoshiro256** engine with convenience distributions. */
class Rng
{
  public:
    /** Constructs an engine from a 64-bit seed via SplitMix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Returns the next raw 64-bit value. */
    std::uint64_t NextU64();

    /** Returns a double uniformly distributed in [0, 1). */
    double NextDouble();

    /** Returns a double uniformly distributed in [lo, hi). */
    double Uniform(double lo, double hi);

    /** Returns a standard-normal variate (Box-Muller, deterministic). */
    double Gaussian();

    /** Returns a normal variate with the given mean and stddev. */
    double Gaussian(double mean, double stddev);

    /** Returns an integer uniformly distributed in [0, n). Requires n > 0. */
    std::uint64_t NextBelow(std::uint64_t n);

    /** Returns true with probability p (clamped to [0, 1]). */
    bool Bernoulli(double p);

    /**
     * Derives an independent child engine for a numbered stream
     * without advancing this engine. Children with distinct stream
     * ids (and equal ids under distinct parents) produce uncorrelated
     * sequences, and the derivation is a pure function of the parent
     * state and the id — so per-worker / per-session streams split
     * from one seed stay reproducible regardless of scheduling.
     *
     * Use this instead of sharing one Rng across workers (ordering
     * nondeterminism) or reusing one seed for several purposes
     * (identical streams).
     */
    Rng Split(std::uint64_t stream_id) const;

  private:
    std::uint64_t state_[4];
    bool has_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

}  // namespace cenn

#endif  // CENN_UTIL_RNG_H_
