#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace cenn {

void
RunningStat::Add(double x)
{
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void
RunningStat::Merge(const RunningStat& other)
{
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void
RunningStat::Reset()
{
  *this = RunningStat();
}

double
RunningStat::Variance() const
{
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double
RunningStat::Stddev() const
{
  return std::sqrt(Variance());
}

ErrorSummary
CompareFields(std::span<const double> a, std::span<const double> b)
{
  if (a.size() != b.size()) {
    CENN_FATAL("CompareFields: size mismatch (", a.size(), " vs ", b.size(),
               ")");
  }
  RunningStat abs_stat;
  double sq_sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    abs_stat.Add(std::abs(d));
    sq_sum += d * d;
  }
  ErrorSummary out;
  out.count = a.size();
  out.mean_abs = abs_stat.Mean();
  out.std_abs = abs_stat.Stddev();
  out.max_abs = a.empty() ? 0.0 : abs_stat.Max();
  out.rms = a.empty() ? 0.0 : std::sqrt(sq_sum / static_cast<double>(a.size()));
  return out;
}

std::string
FormatError(const ErrorSummary& e)
{
  char buf[128];
  std::snprintf(buf, sizeof(buf), "avg=%.3e std=%.3e max=%.3e", e.mean_abs,
                e.std_abs, e.max_abs);
  return buf;
}

}  // namespace cenn
