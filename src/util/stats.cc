#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace cenn {

void
RunningStat::Add(double x)
{
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void
RunningStat::Merge(const RunningStat& other)
{
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void
RunningStat::Reset()
{
  *this = RunningStat();
}

double
RunningStat::Variance() const
{
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double
RunningStat::Stddev() const
{
  return std::sqrt(Variance());
}

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi)
{
  if (!(hi > lo)) {
    CENN_FATAL("Histogram: hi (", hi, ") must exceed lo (", lo, ")");
  }
  if (num_bins < 1) {
    CENN_FATAL("Histogram: need at least one bin, got ", num_bins);
  }
  bins_.assign(static_cast<std::size_t>(num_bins), 0);
  width_ = (hi_ - lo_) / static_cast<double>(num_bins);
}

void
Histogram::Add(double x)
{
  moments_.Add(x);
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  // Guard against floating rounding landing exactly on hi_.
  bin = std::min(bin, bins_.size() - 1);
  ++bins_[bin];
}

void
Histogram::AddN(double x, std::uint64_t n)
{
  for (std::uint64_t i = 0; i < n; ++i) {
    Add(x);
  }
}

void
Histogram::Merge(const Histogram& other)
{
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.bins_.size() != bins_.size()) {
    CENN_FATAL("Histogram::Merge: geometry mismatch ([", lo_, ",", hi_, ")x",
               bins_.size(), " vs [", other.lo_, ",", other.hi_, ")x",
               other.bins_.size(), ")");
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  moments_.Merge(other.moments_);
}

void
Histogram::Reset()
{
  std::fill(bins_.begin(), bins_.end(), 0);
  underflow_ = 0;
  overflow_ = 0;
  moments_.Reset();
}

std::uint64_t
Histogram::BinCount(int bin) const
{
  CENN_ASSERT(bin >= 0 && bin < NumBins(), "bad bin ", bin);
  return bins_[static_cast<std::size_t>(bin)];
}

double
Histogram::BinLow(int bin) const
{
  CENN_ASSERT(bin >= 0 && bin < NumBins(), "bad bin ", bin);
  return lo_ + static_cast<double>(bin) * width_;
}

double
Histogram::Percentile(double p) const
{
  CENN_ASSERT(p >= 0.0 && p <= 1.0, "percentile p out of range: ", p);
  const std::uint64_t total = Count();
  if (total == 0) {
    return 0.0;
  }
  const double target = p * static_cast<double>(total);
  double seen = static_cast<double>(underflow_);
  if (target <= seen) {
    return lo_;
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const auto in_bin = static_cast<double>(bins_[i]);
    if (seen + in_bin >= target && in_bin > 0.0) {
      const double frac = (target - seen) / in_bin;
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    seen += in_bin;
  }
  return hi_;
}

std::string
Histogram::ToString(int max_bar_width) const
{
  std::uint64_t peak = 1;
  for (const std::uint64_t c : bins_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char buf[160];
  if (underflow_ > 0) {
    std::snprintf(buf, sizeof(buf), "%12s < %-8.4g %10llu\n", "", lo_,
                  static_cast<unsigned long long>(underflow_));
    out += buf;
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const int bar = std::min(
        80, static_cast<int>(static_cast<double>(bins_[i]) /
                             static_cast<double>(peak) * max_bar_width));
    std::snprintf(buf, sizeof(buf), "[%8.4g, %8.4g) %10llu %.*s\n",
                  BinLow(static_cast<int>(i)),
                  BinLow(static_cast<int>(i)) + width_,
                  static_cast<unsigned long long>(bins_[i]), bar,
                  "########################################"
                  "########################################");
    out += buf;
  }
  if (overflow_ > 0) {
    std::snprintf(buf, sizeof(buf), "%11s >= %-8.4g %10llu\n", "", hi_,
                  static_cast<unsigned long long>(overflow_));
    out += buf;
  }
  return out;
}

ErrorSummary
CompareFields(std::span<const double> a, std::span<const double> b)
{
  if (a.size() != b.size()) {
    CENN_FATAL("CompareFields: size mismatch (", a.size(), " vs ", b.size(),
               ")");
  }
  RunningStat abs_stat;
  double sq_sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    abs_stat.Add(std::abs(d));
    sq_sum += d * d;
  }
  ErrorSummary out;
  out.count = a.size();
  out.mean_abs = abs_stat.Mean();
  out.std_abs = abs_stat.Stddev();
  out.max_abs = a.empty() ? 0.0 : abs_stat.Max();
  out.rms = a.empty() ? 0.0 : std::sqrt(sq_sum / static_cast<double>(a.size()));
  return out;
}

std::string
FormatError(const ErrorSummary& e)
{
  char buf[128];
  std::snprintf(buf, sizeof(buf), "avg=%.3e std=%.3e max=%.3e", e.mean_abs,
                e.std_abs, e.max_abs);
  return buf;
}

}  // namespace cenn
