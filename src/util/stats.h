#ifndef CENN_UTIL_STATS_H_
#define CENN_UTIL_STATS_H_

/**
 * @file
 * Streaming statistics accumulators used by the accuracy experiments
 * (Fig. 11 error tables) and by the architecture simulator's counters.
 */

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>

namespace cenn {

/**
 * Single-pass mean/variance/min/max accumulator (Welford's algorithm).
 *
 * Numerically stable for long runs; O(1) memory.
 */
class RunningStat
{
  public:
    /** Adds one sample. */
    void Add(double x);

    /** Merges another accumulator into this one. */
    void Merge(const RunningStat& other);

    /** Resets to the empty state. */
    void Reset();

    /** Number of samples added. */
    std::size_t Count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double Mean() const { return count_ > 0 ? mean_ : 0.0; }

    /** Population variance; 0 when fewer than 2 samples. */
    double Variance() const;

    /** Population standard deviation. */
    double Stddev() const;

    /** Smallest sample; +inf when empty. */
    double Min() const { return min_; }

    /** Largest sample; -inf when empty. */
    double Max() const { return max_; }

    /** Sum of all samples. */
    double Sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Summary of the absolute element-wise error between two fields. */
struct ErrorSummary {
  double mean_abs = 0.0;    ///< mean |a_i - b_i|
  double std_abs = 0.0;     ///< stddev of |a_i - b_i|
  double max_abs = 0.0;     ///< max |a_i - b_i|
  double rms = 0.0;         ///< sqrt(mean (a_i - b_i)^2)
  std::size_t count = 0;    ///< number of compared elements
};

/**
 * Compares two equal-length spans element-wise.
 *
 * @return the absolute-error summary; fatal if lengths differ.
 */
ErrorSummary CompareFields(std::span<const double> a,
                           std::span<const double> b);

/** Formats an ErrorSummary as "avg=… std=… max=…" for table rows. */
std::string FormatError(const ErrorSummary& e);

}  // namespace cenn

#endif  // CENN_UTIL_STATS_H_
