#ifndef CENN_UTIL_STATS_H_
#define CENN_UTIL_STATS_H_

/**
 * @file
 * Streaming statistics accumulators used by the accuracy experiments
 * (Fig. 11 error tables) and by the architecture simulator's counters.
 */

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace cenn {

/**
 * Single-pass mean/variance/min/max accumulator (Welford's algorithm).
 *
 * Numerically stable for long runs; O(1) memory.
 */
class RunningStat
{
  public:
    /** Adds one sample. */
    void Add(double x);

    /**
     * Merges another accumulator into this one (Chan et al. parallel
     * update). Merging an empty accumulator is a no-op; merging into
     * an empty one copies `other` verbatim.
     */
    void Merge(const RunningStat& other);

    /** Resets to the empty state. */
    void Reset();

    /** Number of samples added. */
    std::size_t Count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double Mean() const { return count_ > 0 ? mean_ : 0.0; }

    /**
     * *Population* variance (sum of squared deviations divided by n,
     * not n-1); 0 when fewer than 2 samples. Callers needing the
     * unbiased sample variance must rescale by n/(n-1) themselves.
     */
    double Variance() const;

    /** Population standard deviation. */
    double Stddev() const;

    /** Smallest sample; +inf when empty. */
    double Min() const { return min_; }

    /** Largest sample; -inf when empty. */
    double Max() const { return max_; }

    /** Sum of all samples. */
    double Sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bucket histogram accumulator over [lo, hi).
 *
 * `num_bins` equal-width buckets plus dedicated underflow/overflow
 * counters; O(1) insertion. Carries a RunningStat alongside so exact
 * moments survive bucketing. Used by the observability layer's
 * histogram stats (src/obs) and directly by experiments that need
 * latency/occupancy distributions.
 */
class Histogram
{
  public:
    /**
     * @param lo       inclusive lower edge of the first bucket.
     * @param hi       exclusive upper edge of the last bucket (> lo).
     * @param num_bins bucket count (>= 1).
     */
    Histogram(double lo, double hi, int num_bins);

    /** Adds one sample (moments always; a bucket or under/overflow). */
    void Add(double x);

    /** Adds `n` identical samples. */
    void AddN(double x, std::uint64_t n);

    /** Merges a histogram with identical geometry (fatal otherwise). */
    void Merge(const Histogram& other);

    /** Clears all counts and moments; geometry is kept. */
    void Reset();

    /** Total samples including under/overflow. */
    std::uint64_t Count() const { return moments_.Count(); }

    /** Count in bucket `bin` (0-based). */
    std::uint64_t BinCount(int bin) const;

    /** Samples below `lo`. */
    std::uint64_t Underflow() const { return underflow_; }

    /** Samples at or above `hi`. */
    std::uint64_t Overflow() const { return overflow_; }

    /** Inclusive lower edge of bucket `bin`. */
    double BinLow(int bin) const;

    /** Bucket width (hi - lo) / num_bins. */
    double BinWidth() const { return width_; }

    int NumBins() const { return static_cast<int>(bins_.size()); }
    double Lo() const { return lo_; }
    double Hi() const { return hi_; }

    /** Exact streaming moments of every sample added. */
    const RunningStat& Moments() const { return moments_; }

    /**
     * Approximate p-quantile (p in [0, 1]) by linear interpolation
     * within the containing bucket; under/overflow samples clamp to
     * the range edges. 0 when empty.
     */
    double Percentile(double p) const;

    /** Multi-line ASCII rendering: one `[edge, edge) count bar` row. */
    std::string ToString(int max_bar_width = 40) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    RunningStat moments_;
};

/** Summary of the absolute element-wise error between two fields. */
struct ErrorSummary {
  double mean_abs = 0.0;    ///< mean |a_i - b_i|
  double std_abs = 0.0;     ///< stddev of |a_i - b_i|
  double max_abs = 0.0;     ///< max |a_i - b_i|
  double rms = 0.0;         ///< sqrt(mean (a_i - b_i)^2)
  std::size_t count = 0;    ///< number of compared elements
};

/**
 * Compares two equal-length spans element-wise.
 *
 * @return the absolute-error summary; fatal if lengths differ.
 */
ErrorSummary CompareFields(std::span<const double> a,
                           std::span<const double> b);

/** Formats an ErrorSummary as "avg=… std=… max=…" for table rows. */
std::string FormatError(const ErrorSummary& e);

}  // namespace cenn

#endif  // CENN_UTIL_STATS_H_
