#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace cenn {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::AddRow(std::vector<std::string> cells)
{
  if (cells.size() > headers_.size()) {
    CENN_FATAL("TextTable row has ", cells.size(), " cells but only ",
               headers_.size(), " columns");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string
TextTable::Num(double v)
{
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string
TextTable::Num(double v, const char* fmt)
{
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

std::string
TextTable::Int(long long v)
{
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string
TextTable::ToString() const
{
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) {
        line += "  ";
      }
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    sep.append(widths[c], '-');
    if (c + 1 < widths.size()) {
      sep += "  ";
    }
  }
  out += sep + '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void
TextTable::Print() const
{
  std::fputs(ToString().c_str(), stdout);
}

}  // namespace cenn
