#ifndef CENN_UTIL_TABLE_H_
#define CENN_UTIL_TABLE_H_

/**
 * @file
 * Column-aligned ASCII table printer used by the benchmark harnesses to
 * render the paper's tables and figure series on stdout.
 */

#include <cstdio>
#include <string>
#include <vector>

namespace cenn {

/** Accumulates rows of strings and prints them with aligned columns. */
class TextTable
{
  public:
    /** Creates a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Appends a row; missing cells render empty, extras are fatal. */
    void AddRow(std::vector<std::string> cells);

    /** Convenience: formats a double with %.4g. */
    static std::string Num(double v);

    /** Convenience: formats a double with the given printf format. */
    static std::string Num(double v, const char* fmt);

    /** Convenience: formats an integer. */
    static std::string Int(long long v);

    /** Renders the table (header, separator, rows) to a string. */
    std::string ToString() const;

    /** Prints the table to stdout. */
    void Print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace cenn

#endif  // CENN_UTIL_TABLE_H_
