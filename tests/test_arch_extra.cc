/**
 * @file
 * Additional architecture-simulator tests: partial sub-blocks on
 * non-multiple-of-8 grids, functional invariance across memory types,
 * the paper's RD cycle count (36 cycles per sub-block), recommended
 * configuration scaling and report consistency.
 */

#include <gtest/gtest.h>

#include "arch/simulator.h"
#include "lut/lut_evaluator.h"
#include "lut/lut_store.h"
#include "mapping/mapper.h"
#include "models/benchmark_model.h"
#include "models/heat.h"
#include "program/bitstream.h"

namespace cenn {
namespace {

TEST(ArchExtraTest, ReactionDiffusionMatchesPaperTemplateCount)
{
  // Fig. 3's RD example: 2 layers, 3x3 kernels, all four layer pairs
  // programmed -> 36 broadcast cycles per sub-block per step.
  ModelConfig mc;
  mc.rows = 8;
  mc.cols = 8;  // exactly one sub-block
  const auto model = MakeModel("reaction_diffusion", mc);
  ArchSimulator sim(MakeProgram(*model), ArchConfig{});
  sim.Run(1);
  // 36 template-broadcast cycles plus one per offset (z) term.
  const SolverProgram program = MakeProgram(*model);
  std::uint64_t offsets = 0;
  for (const auto& layer : program.spec.layers) {
    offsets += layer.offset_terms.size();
  }
  EXPECT_EQ(sim.Report().compute_cycles, 36u + offsets);
}

TEST(ArchExtraTest, PartialSubBlocksHandleOddGrids)
{
  // 20x12 is not a multiple of 8: 3x2 sub-block tiles with ragged
  // edges. The simulator must still be bit-exact with the engine.
  ModelConfig mc;
  mc.rows = 20;
  mc.cols = 12;
  const auto model = MakeModel("fisher", mc);
  const SolverProgram program = MakeProgram(*model);
  ArchSimulator sim(program, ArchConfig{});
  sim.Run(10);

  auto bank =
      LutStore::Global().Acquire(program.spec, program.lut_config);
  MultilayerCenn<Fixed32> engine(
      program.spec, std::make_shared<LutEvaluatorFixed>(bank));
  engine.Run(10);
  const auto& a = sim.Engine().State(0);
  const auto& b = engine.State(0);
  for (std::size_t i = 0; i < a.Size(); ++i) {
    ASSERT_EQ(a.Data()[i].raw(), b.Data()[i].raw());
  }
  // 6 tiles x 9 cycles x (1 pair) per step for one layer... fisher has
  // 1 layer with 2 couplings merged into 1 state pair -> 9 cycles/tile.
  EXPECT_EQ(sim.Report().compute_cycles, 10u * 6u * 9u);
}

TEST(ArchExtraTest, MacCountScalesWithActiveCells)
{
  // A ragged grid has fewer active PEs in edge tiles; MAC counts must
  // track cells, not tile capacity.
  ModelConfig mc;
  mc.rows = 8;
  mc.cols = 8;
  const auto model8 = MakeModel("heat", mc);
  ArchSimulator sim8(MakeProgram(*model8), ArchConfig{});
  sim8.Run(1);

  mc.rows = 4;
  mc.cols = 4;
  const auto model4 = MakeModel("heat", mc);
  ArchSimulator sim4(MakeProgram(*model4), ArchConfig{});
  sim4.Run(1);

  EXPECT_EQ(sim8.Report().activity.mac_ops, 9u * 64u);
  EXPECT_EQ(sim4.Report().activity.mac_ops, 9u * 16u);
}

TEST(ArchExtraTest, FunctionalResultIndependentOfMemoryType)
{
  // Memory configuration changes timing only; the computed states must
  // be identical bit for bit.
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  const auto model = MakeModel("izhikevich", mc);
  const SolverProgram program = MakeProgram(*model);

  std::vector<std::vector<double>> results;
  for (MemoryType m :
       {MemoryType::kDdr3, MemoryType::kHmcInt, MemoryType::kHmcExt}) {
    ArchConfig config;
    config.memory = MemoryParams::ForType(m);
    ArchSimulator sim(program, config);
    sim.Run(50);
    results.push_back(sim.StateDoubles(0));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(ArchExtraTest, RecommendedConfigKeepsDefaultsForPolynomialPrograms)
{
  ModelConfig mc;
  mc.rows = 8;
  mc.cols = 8;
  // NS uses only identity (poly, LUT-free by default) -> no scaling.
  const SolverProgram ns = MakeProgram(*MakeModel("navier_stokes", mc));
  const ArchConfig cfg = RecommendedArchConfig(ns);
  EXPECT_EQ(cfg.l1_blocks, ArchConfig{}.l1_blocks);
  EXPECT_EQ(cfg.l2_entries, ArchConfig{}.l2_entries);
}

TEST(ArchExtraTest, RecommendedConfigScalesForManyLutFunctions)
{
  ModelConfig mc;
  mc.rows = 8;
  mc.cols = 8;
  // HH has 7 LUT-resident functions (6 rates + quartic).
  const SolverProgram hh = MakeProgram(*MakeModel("hodgkin_huxley", mc));
  const ArchConfig cfg = RecommendedArchConfig(hh);
  EXPECT_GE(cfg.l1_blocks, 14);
  EXPECT_GE(cfg.l2_entries, 56);
  // Power of two preserved for the L2 hash.
  EXPECT_EQ(cfg.l2_entries & (cfg.l2_entries - 1), 0);
}

TEST(ArchExtraTest, StreamWordsAccountForLayersAndInputs)
{
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  // heat: 1 layer, no input. izhikevich: 2 layers + 1 input map.
  const SolverProgram heat = MakeProgram(*MakeModel("heat", mc));
  const SolverProgram izh = MakeProgram(*MakeModel("izhikevich", mc));
  ArchSimulator s1(heat, ArchConfig{});
  ArchSimulator s2(izh, ArchConfig{});
  EXPECT_GT(s2.StreamWordsPerStep(), 2 * s1.StreamWordsPerStep());
}

TEST(ArchExtraTest, ReportStringContainsKeyFields)
{
  ModelConfig mc;
  mc.rows = 8;
  mc.cols = 8;
  ArchSimulator sim(MakeProgram(*MakeModel("heat", mc)), ArchConfig{});
  sim.Run(2);
  const std::string s = sim.Report().ToString(600e6);
  EXPECT_NE(s.find("steps=2"), std::string::npos);
  EXPECT_NE(s.find("GOPS"), std::string::npos);
  EXPECT_NE(s.find("mrL1"), std::string::npos);
}

TEST(ArchExtraTest, CyclesAccumulateLinearlyForStationaryWorkload)
{
  // Heat's timing has no data-dependent stalls: cycles per step are
  // constant, so 20 steps cost exactly twice 10 steps.
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  const SolverProgram program = MakeProgram(*MakeModel("heat", mc));
  ArchSimulator a(program, ArchConfig{});
  ArchSimulator b(program, ArchConfig{});
  a.Run(10);
  b.Run(20);
  EXPECT_EQ(2 * a.Report().total_cycles, b.Report().total_cycles);
}

TEST(ArchExtraTest, HmcExtClockHintRaisesPeClock)
{
  ArchConfig config;
  config.memory = MemoryParams::HmcExt();
  config.pe_clock_hz = config.memory.pe_clock_hint_hz;
  EXPECT_DOUBLE_EQ(config.pe_clock_hz, 2.5e9);
  ModelConfig mc;
  mc.rows = 8;
  mc.cols = 8;
  ArchSimulator sim(MakeProgram(*MakeModel("heat", mc)), config);
  sim.Run(4);
  // Same cycle count as at 600 MHz, but ~4.2x less wall time.
  ArchSimulator slow(MakeProgram(*MakeModel("heat", mc)), ArchConfig{});
  slow.Run(4);
  EXPECT_LT(sim.Report().Seconds(config.pe_clock_hz),
            slow.Report().Seconds(600e6));
}

TEST(ArchExtraTest, FiveByFiveKernelThroughWholeStack)
{
  // 4th-order heat: mapper emits a 5x5 kernel; the merged hardware
  // template becomes 5x5 (25 broadcast cycles per pair), the bitstream
  // carries side-5 kernels, and the simulator stays bit-exact.
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  HeatModel model(mc);
  EquationSystem sys = model.System();
  sys.equations[0].terms[0].op = SpatialOp::kLaplacian4th;
  sys.dt = 0.05;

  SolverProgram program;
  program.spec = Mapper::Map(sys);
  EXPECT_EQ(program.spec.MaxKernelSide(), 5);

  // Bitstream round trip with a 5x5 kernel.
  FunctionRegistry registry;
  const auto bits = SerializeProgram(program);
  const SolverProgram loaded = DeserializeProgram(bits, registry);
  EXPECT_EQ(loaded.spec.MaxKernelSide(), 5);

  // Cycle accounting: one layer, one merged state pair of side 5 ->
  // 25 cycles per sub-block; 4 sub-blocks.
  ArchSimulator sim(program, ArchConfig{});
  sim.Run(2);
  EXPECT_EQ(sim.Report().compute_cycles, 2u * 4u * 25u);

  // Functional equivalence with the plain engine.
  MultilayerCenn<Fixed32> engine(program.spec);
  engine.Run(2);
  const auto& a = sim.Engine().State(0);
  const auto& b = engine.State(0);
  for (std::size_t i = 0; i < a.Size(); ++i) {
    ASSERT_EQ(a.Data()[i].raw(), b.Data()[i].raw());
  }
}

TEST(ArchExtraTest, SaturatingStatesDoNotCrashTheSolver)
{
  // A runaway system pushes Q16.16 states into saturation; the solver
  // must clamp gracefully (no UB, states stuck at the rails).
  NetworkSpec spec;
  spec.name = "runaway";
  spec.rows = 8;
  spec.cols = 8;
  spec.dt = 1.0;
  LayerSpec layer;
  layer.has_self_decay = false;
  Coupling c;
  c.kind = CouplingKind::kState;
  c.src_layer = 0;
  c.kernel = TemplateKernel::Center(TemplateWeight::Constant(3.0));
  layer.couplings.push_back(c);
  layer.initial_state.assign(64, 100.0);
  spec.layers.push_back(layer);

  MultilayerCenn<Fixed32> net(spec);
  net.Run(20);  // 100 * 3^20 would overflow wildly
  for (double v : net.StateDoubles(0)) {
    EXPECT_LE(v, Fixed32::Max().ToDouble());
    EXPECT_DOUBLE_EQ(v, Fixed32::Max().ToDouble());
  }
}

TEST(DramChannelTest, BackToBackFetchesSerializeOnOneChannel)
{
  DramChannelModel dram(2, /*service=*/4, /*latency=*/30);
  // Two fetches at the same instant on channel 0: second waits.
  EXPECT_EQ(dram.Issue(0, 100), 100u + 30u + 4u);
  EXPECT_EQ(dram.Issue(0, 100), 104u + 30u + 4u);
  // Channel 1 is independent.
  EXPECT_EQ(dram.Issue(1, 100), 100u + 30u + 4u);
  EXPECT_EQ(dram.Fetches()[0], 2u);
  EXPECT_EQ(dram.Fetches()[1], 1u);
}

TEST(DramChannelTest, IdleGapsAreNotCharged)
{
  DramChannelModel dram(1, 4, 30);
  dram.Issue(0, 0);
  // Much later request: channel long free, no queueing.
  EXPECT_EQ(dram.Issue(0, 1000), 1000u + 34u);
  EXPECT_EQ(dram.BusyCycles()[0], 8u);
  EXPECT_NEAR(dram.PeakUtilization(1034), 8.0 / 1034.0, 1e-12);
}

TEST(DramChannelTest, MoreChannelsSpreadLoad)
{
  // The simulator exposes the model: a LUT-miss-heavy run on one
  // channel must accumulate more DRAM stall than on sixteen.
  ModelConfig mc;
  mc.rows = 32;
  mc.cols = 32;
  const auto model = MakeModel("navier_stokes", mc);
  const SolverProgram program = MakeProgram(*model);
  ArchConfig one;
  one.lut_for_polynomials = true;
  one.memory = MemoryParams::HmcInt();
  one.memory.channels = 1;
  ArchConfig sixteen = one;
  sixteen.memory.channels = 16;
  ArchSimulator s1(program, one);
  ArchSimulator s16(program, sixteen);
  s1.Run(10);
  s16.Run(10);
  EXPECT_GT(s1.Report().stall_dram_cycles,
            s16.Report().stall_dram_cycles);
  EXPECT_EQ(s1.DramChannels().NumChannels(), 1);
  EXPECT_EQ(s16.DramChannels().NumChannels(), 16);
}

TEST(DramChannelTest, BadChannelCountDies)
{
  EXPECT_DEATH(DramChannelModel(0, 1, 1), "at least one channel");
}

}  // namespace
}  // namespace cenn
