/**
 * @file
 * Architecture-simulator tests: functional equivalence with the
 * fixed-point engine, cycle-accounting sanity, dataflow mode selection,
 * memory-type orderings and configuration validation.
 */

#include <gtest/gtest.h>

#include "arch/dataflow.h"
#include "arch/simulator.h"
#include "lut/lut_evaluator.h"
#include "lut/lut_store.h"
#include "models/benchmark_model.h"

namespace cenn {
namespace {

ModelConfig
SmallConfig()
{
  ModelConfig c;
  c.rows = 16;
  c.cols = 16;
  c.seed = 3;
  return c;
}

TEST(ArchSimulatorTest, FunctionalOutputMatchesFixedEngineBitExact)
{
  for (const char* name : {"heat", "izhikevich", "navier_stokes"}) {
    const auto model = MakeModel(name, SmallConfig());
    const SolverProgram program = MakeProgram(*model);

    ArchSimulator sim(program, ArchConfig{});

    auto bank = LutStore::Global().Acquire(program.spec,
                                                program.lut_config);
    MultilayerCenn<Fixed32> engine(
        program.spec, std::make_shared<LutEvaluatorFixed>(bank));

    sim.Run(20);
    engine.Run(20);

    for (int l = 0; l < program.spec.NumLayers(); ++l) {
      const auto& a = sim.Engine().State(l);
      const auto& b = engine.State(l);
      for (std::size_t i = 0; i < a.Size(); ++i) {
        ASSERT_EQ(a.Data()[i].raw(), b.Data()[i].raw())
            << name << " layer " << l << " cell " << i;
      }
    }
  }
}

TEST(ArchSimulatorTest, PolynomialWeightsAreLutFreeByDefault)
{
  // identity/square/cube are degree-<=3 polynomials: with the default
  // template-resident-coefficient TUM path they cost no LUT traffic.
  const auto model = MakeModel("navier_stokes", SmallConfig());
  ArchSimulator sim(MakeProgram(*model), ArchConfig{});
  sim.Run(5);
  EXPECT_EQ(sim.Report().activity.l1_accesses, 0u);
  EXPECT_GT(sim.Report().activity.tum_evals, 0u);
}

TEST(ArchSimulatorTest, LinearModelHasNoLutTraffic)
{
  const auto model = MakeModel("heat", SmallConfig());
  ArchSimulator sim(MakeProgram(*model), ArchConfig{});
  sim.Run(5);
  const SimReport& r = sim.Report();
  EXPECT_EQ(r.activity.l1_accesses, 0u);
  EXPECT_EQ(r.activity.lut_dram_fetches, 0u);
  EXPECT_EQ(r.stall_l2_cycles, 0u);
  EXPECT_EQ(r.stall_dram_cycles, 0u);
  EXPECT_GT(r.compute_cycles, 0u);
  EXPECT_GT(r.total_cycles, 0u);
}

TEST(ArchSimulatorTest, HeatComputeCyclesMatchPaperFormula)
{
  // 16x16 grid = 4 sub-blocks; 1 layer => N^2 = 1 state template of
  // 3x3 => 9 cycles per sub-block per step (Section 5.2).
  const auto model = MakeModel("heat", SmallConfig());
  ArchSimulator sim(MakeProgram(*model), ArchConfig{});
  sim.Run(10);
  EXPECT_EQ(sim.Report().compute_cycles, 10u * 4u * 9u);
}

TEST(ArchSimulatorTest, NonlinearModelProducesLutTraffic)
{
  const auto model = MakeModel("navier_stokes", SmallConfig());
  ArchConfig config;
  config.lut_for_polynomials = true;  // Fig. 12 style LUT accounting
  ArchSimulator sim(MakeProgram(*model), config);
  sim.Run(5);
  const SimReport& r = sim.Report();
  EXPECT_GT(r.activity.l1_accesses, 0u);
  EXPECT_GT(r.activity.tum_evals, 0u);
}

TEST(ArchSimulatorTest, TotalCyclesAtLeastMaxOfPipelines)
{
  const auto model = MakeModel("reaction_diffusion", SmallConfig());
  ArchSimulator sim(MakeProgram(*model), ArchConfig{});
  sim.Run(3);
  const SimReport& r = sim.Report();
  EXPECT_GE(r.total_cycles, r.memory_cycles);
  EXPECT_GE(r.total_cycles, r.compute_cycles);
}

TEST(ArchSimulatorTest, HmcIsFasterThanDdr3OnMissHeavyWorkload)
{
  const auto model = MakeModel("navier_stokes", SmallConfig());
  const SolverProgram program = MakeProgram(*model);

  ArchConfig ddr3;
  ddr3.lut_for_polynomials = true;
  ddr3.memory = MemoryParams::Ddr3();
  ArchConfig hmc_int = ddr3;
  hmc_int.memory = MemoryParams::HmcInt();
  ArchConfig hmc_ext = ddr3;
  hmc_ext.memory = MemoryParams::HmcExt();

  ArchSimulator s1(program, ddr3);
  ArchSimulator s2(program, hmc_int);
  ArchSimulator s3(program, hmc_ext);
  s1.Run(10);
  s2.Run(10);
  s3.Run(10);

  EXPECT_LT(s2.Report().total_cycles, s1.Report().total_cycles);
  EXPECT_LE(s3.Report().total_cycles, s2.Report().total_cycles);
}

TEST(ArchSimulatorTest, BiggerL1ReducesMissRate)
{
  const auto model = MakeModel("navier_stokes", SmallConfig());
  const SolverProgram program = MakeProgram(*model);

  ArchConfig small;
  small.lut_for_polynomials = true;
  small.l1_blocks = 2;
  ArchConfig big;
  big.lut_for_polynomials = true;
  big.l1_blocks = 32;

  ArchSimulator s1(program, small);
  ArchSimulator s2(program, big);
  s1.Run(10);
  s2.Run(10);
  EXPECT_GT(s1.Report().activity.L1MissRate(),
            s2.Report().activity.L2MissRate() * 0.0);  // defined
  EXPECT_LE(s2.Report().activity.L1MissRate(),
            s1.Report().activity.L1MissRate());
}

TEST(DataflowTest, ModeSelectionMatchesPaperRules)
{
  // 3x3 kernel: conv ids 0..8 -> modes 0,1,1,2,3,3,2,3,3 (Fig. 10).
  const int expected[] = {0, 1, 1, 2, 3, 3, 2, 3, 3};
  for (int id = 0; id < 9; ++id) {
    EXPECT_EQ(DataflowMode(id, 3), expected[id]) << "conv_id " << id;
  }
  EXPECT_EQ(DataflowMode(0, 5), 0);
  EXPECT_EQ(DataflowMode(4, 5), 1);
  EXPECT_EQ(DataflowMode(5, 5), 2);
  EXPECT_EQ(DataflowMode(7, 5), 3);
}

TEST(DataflowTest, OsReducesDramAccessesByPeCount)
{
  const double non_os = DramAccessesPerStepNonOs(0.5, 0.2, 1 << 20, 1);
  const double os = DramAccessesPerStepOs(0.5, 0.2, 1 << 20, 1, 64);
  EXPECT_DOUBLE_EQ(non_os / os, 64.0);
}

TEST(DataflowTest, PaperExampleNumbers)
{
  // Section 5.1: mr product 0.1, 1M inputs, one updating template ->
  // ~100K accesses non-OS, ~1.6K with 64 PEs.
  const double non_os = DramAccessesPerStepNonOs(0.1, 1.0, 1 << 20, 1);
  EXPECT_NEAR(non_os, 104857.6, 1.0);
  const double os = DramAccessesPerStepOs(0.1, 1.0, 1 << 20, 1, 64);
  EXPECT_NEAR(os, 1638.4, 0.1);
}

TEST(ArchConfigTest, ValidateCatchesBadConfigs)
{
  ArchConfig bad;
  bad.num_l2 = 7;  // does not divide 64
  EXPECT_DEATH(bad.Validate(), "must divide");

  ArchConfig bad2;
  bad2.l2_entries = 33;
  EXPECT_DEATH(bad2.Validate(), "power of two");
}

TEST(ArchConfigTest, MemoryPresetsHaveExpectedShape)
{
  const auto ddr3 = MemoryParams::Ddr3();
  const auto hmc_int = MemoryParams::HmcInt();
  const auto hmc_ext = MemoryParams::HmcExt();
  EXPECT_EQ(ddr3.channels, 2);
  EXPECT_EQ(hmc_int.channels, 16);
  EXPECT_EQ(hmc_ext.channels, 16);
  EXPECT_GT(hmc_int.PeakBandwidth(), ddr3.PeakBandwidth());
  EXPECT_GT(hmc_ext.PeakBandwidth(), hmc_int.PeakBandwidth());
  EXPECT_LT(hmc_int.energy_pj_per_bit, ddr3.energy_pj_per_bit);
}

}  // namespace
}  // namespace cenn
