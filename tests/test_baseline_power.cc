/**
 * @file
 * Tests for the CPU/GPU roofline baselines (workload extraction,
 * roofline arithmetic, monotonicity) and the power/energy model
 * (Tables 1-2 constants, scaling, activity-ratio energy accounting,
 * Table 3 rows).
 */

#include <gtest/gtest.h>

#include "arch/simulator.h"
#include "baseline/platform_model.h"
#include "baseline/workload.h"
#include "mapping/mapper.h"
#include "models/benchmark_model.h"
#include "power/power_model.h"

namespace cenn {
namespace {

NetworkSpec
TinySpec(const char* model)
{
  ModelConfig config;
  config.rows = 16;
  config.cols = 16;
  return MakeProgram(*MakeModel(model, config)).spec;
}

// ---- WorkloadProfile ----------------------------------------------------

TEST(WorkloadTest, HeatProfileCountsMatchHand)
{
  const WorkloadProfile w = WorkloadProfile::FromSpec(TinySpec("heat"));
  EXPECT_EQ(w.cells, 256u);
  EXPECT_EQ(w.layers, 1);
  // 5 nonzero stencil weights + center compensation merge into one
  // kernel: 5 nonzero entries.
  EXPECT_EQ(w.macs_per_step, 256u * 5u);
  EXPECT_EQ(w.nonlinear_evals_per_step, 0u);
  // read + write one layer, no inputs: 2 * cells * 4 bytes.
  EXPECT_EQ(w.bytes_per_step, 256u * 2u * 4u);
}

TEST(WorkloadTest, NonlinearModelCountsEvals)
{
  const WorkloadProfile w =
      WorkloadProfile::FromSpec(TinySpec("izhikevich"));
  EXPECT_EQ(w.layers, 2);
  EXPECT_GT(w.nonlinear_evals_per_step, 0u);
  // Izhikevich reads an input field: 2 reads + 2 writes + 1 input.
  EXPECT_EQ(w.bytes_per_step, 256u * 5u * 4u);
}

TEST(WorkloadTest, OpsPerStepComposition)
{
  WorkloadProfile w;
  w.macs_per_step = 10;
  w.nonlinear_evals_per_step = 3;
  w.simple_ops_per_step = 4;
  EXPECT_EQ(w.OpsPerStep(), 2u * 10u + 3u + 4u);
}

// ---- PlatformModel -------------------------------------------------------

TEST(PlatformModelTest, RooflineTakesMaxOfComputeAndMemory)
{
  PlatformModel m;
  m.peak_flops = 1e9;
  m.compute_efficiency = 1.0;
  m.mem_bandwidth = 1e9;
  m.mem_efficiency = 1.0;
  m.nonlinear_flop_cost = 1.0;

  WorkloadProfile compute_heavy;
  compute_heavy.macs_per_step = 1000000;  // 2 MFLOP -> 2 ms
  compute_heavy.bytes_per_step = 1000;    // 1 us
  EXPECT_NEAR(m.StepTime(compute_heavy), 2e-3, 1e-9);

  WorkloadProfile mem_heavy;
  mem_heavy.macs_per_step = 10;
  mem_heavy.bytes_per_step = 1000000;  // 1 ms
  EXPECT_NEAR(m.StepTime(mem_heavy), 1e-3, 1e-9);
}

TEST(PlatformModelTest, OverheadScalesWithLayers)
{
  PlatformModel m;
  m.peak_flops = 1e12;
  m.mem_bandwidth = 1e12;
  m.per_step_overhead_s = 1e-6;
  m.per_kernel_overhead_s = 2e-6;
  WorkloadProfile w;
  w.layers = 3;
  w.macs_per_step = 1;
  w.bytes_per_step = 1;
  EXPECT_NEAR(m.StepTime(w), 1e-6 + 3 * 2e-6, 1e-10);
}

TEST(PlatformModelTest, RunTimeLinearInSteps)
{
  const PlatformModel m = PlatformModel::DesktopCpu();
  const WorkloadProfile w = WorkloadProfile::FromSpec(TinySpec("fisher"));
  EXPECT_NEAR(m.RunTime(w, 100), 100.0 * m.StepTime(w), 1e-12);
}

TEST(PlatformModelTest, GpuFasterThanCpuOnLargeComputeBoundWork)
{
  ModelConfig config;
  config.rows = 256;
  config.cols = 256;
  const auto model = MakeModel("hodgkin_huxley", config);
  const WorkloadProfile w =
      WorkloadProfile::FromSpec(Mapper::Map(model->System()));
  EXPECT_LT(PlatformModel::Gtx850().StepTime(w),
            PlatformModel::DesktopCpu().StepTime(w));
}

TEST(PlatformModelTest, PresetsPlausible)
{
  const auto cpu = PlatformModel::DesktopCpu();
  const auto gpu = PlatformModel::Gtx850();
  EXPECT_GT(gpu.peak_flops, cpu.peak_flops);
  EXPECT_GT(gpu.power_w, 0.0);
  EXPECT_GE(gpu.power_w, 40.0);
  EXPECT_LE(gpu.power_w, 50.0);  // the paper's quoted range
}

// ---- Power model ----------------------------------------------------------

TEST(PowerModelTest, Table1ConstantsMatchPaper)
{
  const PePowerTable t = DefaultPeTable();
  EXPECT_DOUBLE_EQ(t.tum.power_mw, 1.20);
  EXPECT_DOUBLE_EQ(t.alu.power_mw, 1.12);
  EXPECT_DOUBLE_EQ(t.pe.power_mw, 2.32);
  EXPECT_DOUBLE_EQ(t.pes.power_mw, 148.48);
  EXPECT_DOUBLE_EQ(t.l1_luts.power_mw, 51.20);
  EXPECT_DOUBLE_EQ(t.pes.area_mm2, 0.380);
}

TEST(PowerModelTest, Table2ConstantsMatchPaper)
{
  const SystemPowerTable t = DefaultSystemTable();
  EXPECT_DOUBLE_EQ(t.pe_array.power_mw, 199.68);
  EXPECT_DOUBLE_EQ(t.l2_lut.power_mw, 63.61);
  EXPECT_DOUBLE_EQ(t.global_buffer.power_mw, 260.16);
  EXPECT_DOUBLE_EQ(t.total.power_mw, 523.45);
  EXPECT_DOUBLE_EQ(t.total.area_mm2, 1.082);
}

TEST(PowerModelTest, ScaledTableMatchesDefaultAtReference)
{
  const SystemPowerTable scaled = ScaledSystemTable(ArchConfig{});
  const SystemPowerTable ref = DefaultSystemTable();
  EXPECT_NEAR(scaled.pe_array.power_mw, ref.pe_array.power_mw, 1e-9);
  EXPECT_NEAR(scaled.total.power_mw, ref.total.power_mw, 1e-6);
}

TEST(PowerModelTest, ScalingIsLinearInPes)
{
  ArchConfig half;
  half.pe_rows = 8;
  half.pe_cols = 4;
  half.num_l2 = 16;
  const SystemPowerTable t = ScaledSystemTable(half);
  const PePowerTable ref = DefaultPeTable();
  EXPECT_NEAR(t.pe_array.power_mw,
              (ref.pes.power_mw + ref.l1_luts.power_mw) / 2.0, 1e-9);
}

TEST(PowerModelTest, EnergyReportConsistency)
{
  ModelConfig config;
  config.rows = 16;
  config.cols = 16;
  const auto model = MakeModel("heat", config);
  const SolverProgram program = MakeProgram(*model);
  ArchConfig arch;
  ArchSimulator sim(program, arch);
  sim.Run(20);
  const EnergyReport e = ComputeEnergy(sim.Report(), arch);
  EXPECT_GT(e.runtime_s, 0.0);
  EXPECT_NEAR(e.onchip_power_w, 0.52345, 1e-4);
  EXPECT_GE(e.activity_ratio, 0.0);
  EXPECT_LE(e.activity_ratio, 1.0);
  EXPECT_NEAR(e.energy_j, e.total_power_w * e.runtime_s, 1e-12);
  EXPECT_GT(e.gops, 0.0);
  EXPECT_NEAR(e.gops_per_watt, e.gops / e.total_power_w, 1e-9);
}

TEST(PowerModelTest, HigherClockCostsMorePower)
{
  ModelConfig config;
  config.rows = 16;
  config.cols = 16;
  const SolverProgram program = MakeProgram(*MakeModel("heat", config));
  ArchConfig fast;
  fast.memory = MemoryParams::HmcExt();
  fast.pe_clock_hz = fast.memory.pe_clock_hint_hz;  // 2.5 GHz
  ArchSimulator sim(program, fast);
  sim.Run(5);
  const EnergyReport e = ComputeEnergy(sim.Report(), fast);
  EXPECT_GT(e.onchip_power_w, 2.0);  // ~0.523 W * 2500/600
}

TEST(PowerModelTest, Table3RowsPlausible)
{
  const auto rows = PriorPlatformRows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "ACE16k");
  for (const auto& row : rows) {
    EXPECT_FALSE(row.nonlinear_weight_update);
  }
  const PlatformRow us = ThisWorkRow(ArchConfig{});
  EXPECT_TRUE(us.nonlinear_weight_update);
  EXPECT_NEAR(us.peak_gops, 54.0, 0.5);       // the paper's 54 GOPS
  EXPECT_NEAR(us.gops_per_w, 103.26, 2.0);    // the paper's 103.26
  EXPECT_NEAR(us.power_w, 0.523, 0.01);
}

}  // namespace
}  // namespace cenn
