/**
 * @file
 * Tests for the Fig. 9 global-buffer banking model and the template
 * buffer's two-counter FSM (Section 4.2/4.3), plus their integration
 * into the cycle simulator's counters.
 */

#include <gtest/gtest.h>

#include "arch/buffers.h"
#include "arch/simulator.h"
#include "models/benchmark_model.h"

namespace cenn {
namespace {

TEST(GlobalBufferTest, PrimaryBankMapsRowModulo)
{
  GlobalBufferModel buf(16, 8, 2u << 20);
  // Bank (k-1) has data for the k-th row in each sub-block (Fig. 9).
  EXPECT_EQ(buf.PrimaryBankForRow(0), 0);
  EXPECT_EQ(buf.PrimaryBankForRow(7), 7);
  EXPECT_EQ(buf.PrimaryBankForRow(8), 0);
  EXPECT_EQ(buf.PrimaryBankForRow(13), 5);
}

TEST(GlobalBufferTest, SupportBankInterleavesColumns)
{
  GlobalBufferModel buf(16, 8, 2u << 20);
  EXPECT_EQ(buf.SupportBankForCol(0), 0);
  EXPECT_EQ(buf.SupportBankForCol(9), 1);
  EXPECT_NE(buf.SupportBankForCol(3), buf.SupportBankForCol(4));
}

TEST(GlobalBufferTest, SubBlockLoadSpreadsEvenlyAcrossPrimaryBanks)
{
  GlobalBufferModel buf(16, 8, 2u << 20);
  buf.RecordSubBlockLoad(8, 8);
  for (std::uint64_t reads : buf.PrimaryReads()) {
    EXPECT_EQ(reads, 8u);
  }
  EXPECT_DOUBLE_EQ(buf.PrimaryImbalance(), 1.0);
}

TEST(GlobalBufferTest, BoundaryColumnHitsSupportGroup)
{
  GlobalBufferModel buf(16, 8, 2u << 20);
  buf.RecordBoundaryColumn(8, 3);
  EXPECT_EQ(buf.SupportReads()[3], 8u);
  std::uint64_t total = 0;
  for (std::uint64_t r : buf.PrimaryReads()) {
    total += r;
  }
  EXPECT_EQ(total, 0u);
}

TEST(GlobalBufferTest, CapacityCheck)
{
  NetworkSpec spec;
  spec.rows = 64;
  spec.cols = 64;
  spec.layers.resize(2);
  // 2 layers x 4096 cells x 4 B = 32 KB.
  EXPECT_EQ(GlobalBufferModel::BytesNeeded(spec), 32768u);
  GlobalBufferModel big(16, 8, 2u << 20);
  EXPECT_TRUE(big.Fits(spec));
  GlobalBufferModel small(16, 8, 16384);
  EXPECT_FALSE(small.Fits(spec));
}

TEST(GlobalBufferTest, OddBankCountDies)
{
  EXPECT_DEATH(GlobalBufferModel(15, 8, 1024), "even bank count");
}

TEST(TemplateBufferFsmTest, SequencesConvThenPairs)
{
  TemplateBufferFsm fsm(2, 3);
  EXPECT_EQ(fsm.StepsPerSweep(), 4 * 9);
  // First step: pair (0,0), conv 0.
  EXPECT_EQ(fsm.Current(), (TemplateStep{0, 0, 0}));
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(fsm.Advance());
  }
  EXPECT_EQ(fsm.Current(), (TemplateStep{0, 0, 8}));
  EXPECT_FALSE(fsm.Advance());
  // Next pair: dst 0, src 1.
  EXPECT_EQ(fsm.Current(), (TemplateStep{0, 1, 0}));
}

TEST(TemplateBufferFsmTest, FullSweepWrapsAndCounts)
{
  TemplateBufferFsm fsm(2, 3);
  int steps = 0;
  while (!fsm.Advance()) {
    ++steps;
  }
  EXPECT_EQ(steps + 1, fsm.StepsPerSweep());
  EXPECT_EQ(fsm.Sweeps(), 1u);
  EXPECT_EQ(fsm.Current(), (TemplateStep{0, 0, 0}));
}

TEST(TemplateBufferFsmTest, StorageMatchesPaperExample)
{
  // Fig. 3's RD example: 2 layers, 3x3 kernel -> 36 weights.
  TemplateBufferFsm fsm(2, 3);
  EXPECT_EQ(fsm.StorageWords(), 36);
}

TEST(TemplateBufferFsmTest, BadGeometryDies)
{
  EXPECT_DEATH(TemplateBufferFsm(0, 3), "geometry");
  EXPECT_DEATH(TemplateBufferFsm(2, 4), "geometry");
}

TEST(BufferIntegrationTest, SimulatorTracksBankTraffic)
{
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  const auto model = MakeModel("heat", mc);
  ArchSimulator sim(MakeProgram(*model), ArchConfig{});
  sim.Run(3);
  const GlobalBufferModel& buf = sim.Buffer();
  std::uint64_t primary = 0;
  for (std::uint64_t r : buf.PrimaryReads()) {
    primary += r;
  }
  std::uint64_t support = 0;
  for (std::uint64_t r : buf.SupportReads()) {
    support += r;
  }
  // 3x3 kernel: per sub-block per sweep, 1 full load (64 words,
  // primary), 2 boundary columns + 4 more (support), 2 rows (primary).
  EXPECT_GT(primary, 0u);
  EXPECT_GT(support, 0u);
  EXPECT_EQ(buf.Writes(), 3u * 16u * 16u);  // steps x cells x 1 layer
  // Full sub-block loads are balanced; mode-2 boundary rows always
  // land in the same banks, so a bounded skew remains.
  EXPECT_LE(buf.PrimaryImbalance(), 4.0);
}

}  // namespace
}  // namespace cenn
