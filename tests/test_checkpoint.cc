/**
 * @file
 * Checkpoint tests: capture/restore fidelity on both precisions,
 * bit-exact continuation for the fixed-point engine, serialization
 * round trips and corruption detection.
 */

#include <gtest/gtest.h>

#include "mapping/mapper.h"
#include "models/benchmark_model.h"
#include "program/checkpoint.h"

namespace cenn {
namespace {

NetworkSpec
RdSpec()
{
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  return Mapper::Map(MakeModel("reaction_diffusion", mc)->System());
}

TEST(CheckpointTest, FixedEngineContinuationIsBitExact)
{
  const NetworkSpec spec = RdSpec();
  MultilayerCenn<Fixed32> uninterrupted(spec);
  uninterrupted.Run(60);

  MultilayerCenn<Fixed32> first(spec);
  first.Run(25);
  const Checkpoint cp = CaptureCheckpoint(first);
  EXPECT_EQ(cp.steps, 25u);

  MultilayerCenn<Fixed32> resumed(spec);
  RestoreCheckpoint(cp, &resumed);
  resumed.Run(35);

  for (int l = 0; l < spec.NumLayers(); ++l) {
    const auto& a = uninterrupted.State(l);
    const auto& b = resumed.State(l);
    for (std::size_t i = 0; i < a.Size(); ++i) {
      ASSERT_EQ(a.Data()[i].raw(), b.Data()[i].raw()) << "layer " << l;
    }
  }
}

TEST(CheckpointTest, DoubleEngineContinuationMatches)
{
  const NetworkSpec spec = RdSpec();
  MultilayerCenn<double> uninterrupted(spec);
  uninterrupted.Run(40);

  MultilayerCenn<double> first(spec);
  first.Run(20);
  const Checkpoint cp = CaptureCheckpoint(first);
  MultilayerCenn<double> resumed(spec);
  RestoreCheckpoint(cp, &resumed);
  resumed.Run(20);

  const auto a = uninterrupted.StateDoubles(0);
  const auto b = resumed.StateDoubles(0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(CheckpointTest, SerializationRoundTrip)
{
  const NetworkSpec spec = RdSpec();
  MultilayerCenn<double> engine(spec);
  engine.Run(10);
  const Checkpoint cp = CaptureCheckpoint(engine);
  const auto bytes = SerializeCheckpoint(cp);
  const Checkpoint back = DeserializeCheckpoint(bytes);
  EXPECT_EQ(back.network_name, cp.network_name);
  EXPECT_EQ(back.rows, cp.rows);
  EXPECT_EQ(back.cols, cp.cols);
  EXPECT_EQ(back.steps, cp.steps);
  ASSERT_EQ(back.layer_states.size(), cp.layer_states.size());
  for (std::size_t l = 0; l < cp.layer_states.size(); ++l) {
    ASSERT_EQ(back.layer_states[l], cp.layer_states[l]);
  }
}

TEST(CheckpointTest, CorruptionDetected)
{
  const NetworkSpec spec = RdSpec();
  MultilayerCenn<double> engine(spec);
  auto bytes = SerializeCheckpoint(CaptureCheckpoint(engine));
  bytes[bytes.size() / 3] ^= 0x5a;
  EXPECT_DEATH(DeserializeCheckpoint(bytes), "checksum");
}

TEST(CheckpointTest, GeometryMismatchDies)
{
  const NetworkSpec spec = RdSpec();
  MultilayerCenn<double> engine(spec);
  Checkpoint cp = CaptureCheckpoint(engine);
  cp.rows = 8;
  EXPECT_DEATH(RestoreCheckpoint(cp, &engine), "geometry mismatch");
}

TEST(CheckpointTest, CaptureFromDeSolverFacade)
{
  const NetworkSpec spec = RdSpec();
  SolverOptions options;
  options.precision = Precision::kFixed32;
  DeSolver solver(spec, options);
  solver.Run(5);
  const Checkpoint cp = CaptureCheckpoint(solver);
  EXPECT_EQ(cp.steps, 5u);
  EXPECT_EQ(cp.layer_states.size(),
            static_cast<std::size_t>(spec.NumLayers()));
}

}  // namespace
}  // namespace cenn
