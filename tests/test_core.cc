/**
 * @file
 * Core CeNN engine tests: grid boundary semantics, template kernels,
 * Taylor tuples, spec validation, the cell dynamics of eq. (1)-(2),
 * reset rules and the DeSolver facade.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/network.h"
#include "core/solver.h"

namespace cenn {
namespace {

// ---- Grid & boundary -------------------------------------------------

TEST(GridTest, ZeroFluxClampsIndices)
{
  Grid2D<double> g(2, 2);
  g.At(0, 0) = 1.0;
  g.At(0, 1) = 2.0;
  g.At(1, 0) = 3.0;
  g.At(1, 1) = 4.0;
  const Boundary bc{BoundaryKind::kZeroFlux, 0.0};
  EXPECT_EQ(g.Neighbor(-1, 0, bc), 1.0);
  EXPECT_EQ(g.Neighbor(0, -5, bc), 1.0);
  EXPECT_EQ(g.Neighbor(2, 1, bc), 4.0);
  EXPECT_EQ(g.Neighbor(5, 5, bc), 4.0);
}

TEST(GridTest, DirichletReturnsBoundaryValue)
{
  Grid2D<double> g(2, 2, 9.0);
  const Boundary bc{BoundaryKind::kDirichlet, -1.5};
  EXPECT_EQ(g.Neighbor(-1, 0, bc), -1.5);
  EXPECT_EQ(g.Neighbor(0, 0, bc), 9.0);
}

TEST(GridTest, PeriodicWrapsBothWays)
{
  Grid2D<double> g(3, 3);
  g.At(0, 0) = 1.0;
  g.At(2, 2) = 8.0;
  const Boundary bc{BoundaryKind::kPeriodic, 0.0};
  EXPECT_EQ(g.Neighbor(-1, -1, bc), 8.0);
  EXPECT_EQ(g.Neighbor(3, 3, bc), 1.0);
  EXPECT_EQ(g.Neighbor(-3, 0, bc), 1.0);
}

TEST(GridTest, FixedPointGridConversion)
{
  const std::vector<double> values = {0.5, -1.25, 3.0, 0.0};
  auto g = Grid2D<Fixed32>::FromDoubles(2, 2, values);
  const auto back = g.ToDoubles();
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(back[i], values[i], Fixed32::Epsilon());
  }
}

TEST(GridTest, CheckedAccessDiesOutOfRange)
{
  Grid2D<double> g(2, 2);
  EXPECT_DEATH(g.AtChecked(2, 0), "out of");
}

// ---- Template kernels ------------------------------------------------

TEST(TemplateKernelTest, EvenSideDies)
{
  EXPECT_DEATH(TemplateKernel(2), "odd");
}

TEST(TemplateKernelTest, OffsetsIndexRowMajor)
{
  TemplateKernel k = TemplateKernel::FromConstants(
      3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(k.At(-1, -1).constant, 1.0);
  EXPECT_EQ(k.At(0, 0).constant, 5.0);
  EXPECT_EQ(k.At(1, 1).constant, 9.0);
  EXPECT_EQ(k.At(-1, 1).constant, 3.0);
  EXPECT_EQ(k.Radius(), 1);
}

TEST(TemplateKernelTest, WuiCounting)
{
  TemplateKernel k(3);
  EXPECT_TRUE(k.IsLinear());
  EXPECT_TRUE(k.IsZero());
  k.At(0, 0) = TemplateWeight::Nonlinear(
      1.0, 0, NonlinearFunction::Polynomial("sq", {0, 0, 1}));
  EXPECT_EQ(k.CountNonlinear(), 1);
  EXPECT_FALSE(k.IsLinear());
  EXPECT_FALSE(k.IsZero());
}

TEST(TemplateKernelTest, CenterMakes1x1)
{
  const TemplateKernel k =
      TemplateKernel::Center(TemplateWeight::Constant(2.5));
  EXPECT_EQ(k.Side(), 1);
  EXPECT_EQ(k.At(0, 0).constant, 2.5);
}

// ---- Nonlinear functions & Taylor tuples ------------------------------

TEST(NonlinearTest, PolynomialExactDerivatives)
{
  // f = 1 + 2x + 3x^2 + 4x^3
  const auto fn = NonlinearFunction::Polynomial("p", {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(fn->Value(2.0), 1 + 4 + 12 + 32);
  EXPECT_DOUBLE_EQ(fn->Derivative(1, 2.0), 2 + 6 * 2.0 + 12 * 4.0);
  EXPECT_DOUBLE_EQ(fn->Derivative(2, 2.0), 6 + 24 * 2.0);
  EXPECT_DOUBLE_EQ(fn->Derivative(3, 2.0), 24.0);
  EXPECT_EQ(fn->PolyDegree(), 3);
  EXPECT_TRUE(fn->LutFree());
}

TEST(NonlinearTest, TrailingZeroCoefficientsReduceDegree)
{
  const auto fn = NonlinearFunction::Polynomial("p", {1, 2, 0, 0, 0});
  EXPECT_EQ(fn->PolyDegree(), 1);
  EXPECT_TRUE(fn->LutFree());
}

TEST(NonlinearTest, QuarticIsNotLutFree)
{
  const auto fn = NonlinearFunction::Polynomial("q", {0, 0, 0, 0, 1});
  EXPECT_EQ(fn->PolyDegree(), 4);
  EXPECT_FALSE(fn->LutFree());
}

TEST(NonlinearTest, LambdaFunctionsAreNotLutFree)
{
  const auto fn = MakeFunction("exp", [](double x) { return std::exp(x); });
  EXPECT_FALSE(fn->LutFree());
}

TEST(NonlinearTest, TaylorTupleExactForCubicPolynomials)
{
  const auto fn = NonlinearFunction::Polynomial("p", {1, -2, 0.5, 0.25});
  for (double p : {-3.0, 0.0, 2.0}) {
    const TaylorTuple t = fn->TaylorAt(p);
    for (double x : {-4.0, -1.0, 0.3, 2.7}) {
      EXPECT_NEAR(t.Evaluate(x), fn->Value(x), 1e-9) << "p=" << p;
      EXPECT_NEAR(t.EvaluateAroundP(x), fn->Value(x), 1e-9) << "p=" << p;
    }
  }
}

TEST(NonlinearTest, TaylorApproximatesTranscendentalNearP)
{
  const auto fn = MakeFunction("sin", [](double x) { return std::sin(x); },
                               1e-3);
  const TaylorTuple t = fn->TaylorAt(1.0);
  EXPECT_NEAR(t.l_p, std::sin(1.0), 1e-12);
  // Within |x - p| <= 0.1, a cubic Taylor of sin is ~1e-6 accurate.
  for (double x : {0.9, 0.95, 1.05, 1.1}) {
    EXPECT_NEAR(t.EvaluateAroundP(x), std::sin(x), 1e-5);
  }
}

TEST(NonlinearTest, AlphaDecompositionConsistent)
{
  // value = c3 + alpha(x) * x must match the direct cubic everywhere.
  const auto fn = MakeFunction("e", [](double x) { return std::exp(x); },
                               1e-3);
  const TaylorTuple t = fn->TaylorAt(0.5);
  for (double x : {0.3, 0.5, 0.7}) {
    EXPECT_NEAR(t.c3 + t.Alpha(x) * x, t.EvaluateAroundP(x), 1e-9);
  }
}

// ---- Cell dynamics ----------------------------------------------------

/** 1x1 network with pure self-decay: dx/dt = -x -> exponential decay. */
TEST(NetworkTest, SelfDecayApproximatesExponential)
{
  NetworkSpec spec;
  spec.name = "decay";
  spec.rows = 1;
  spec.cols = 1;
  spec.dt = 1e-3;
  LayerSpec layer;
  layer.name = "x";
  layer.initial_state = {1.0};
  spec.layers.push_back(layer);

  MultilayerCenn<double> net(spec);
  net.Run(1000);  // t = 1
  EXPECT_NEAR(net.StateDoubles(0)[0], std::exp(-1.0), 1e-3);
}

/** Offset z drives the state toward z (dx/dt = -x + z). */
TEST(NetworkTest, OffsetSetsFixedPoint)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 1;
  spec.dt = 1e-2;
  LayerSpec layer;
  layer.z = 2.0;
  spec.layers.push_back(layer);

  MultilayerCenn<double> net(spec);
  net.Run(2000);
  EXPECT_NEAR(net.StateDoubles(0)[0], 2.0, 1e-6);
}

/** Input coupling B: dx/dt = -x + B*u has fixed point B*u. */
TEST(NetworkTest, FeedforwardInputCoupling)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 1;
  spec.dt = 1e-2;
  LayerSpec layer;
  Coupling b;
  b.kind = CouplingKind::kInput;
  b.src_layer = 0;
  b.kernel = TemplateKernel::Center(TemplateWeight::Constant(3.0));
  layer.couplings.push_back(b);
  layer.input = {0.5};
  spec.layers.push_back(layer);

  MultilayerCenn<double> net(spec);
  net.Run(2000);
  EXPECT_NEAR(net.StateDoubles(0)[0], 1.5, 1e-6);
}

/** Output coupling A applies the saturated y = f(x). */
TEST(NetworkTest, OutputCouplingUsesSaturatedOutput)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 1;
  spec.dt = 1e-2;
  // Layer 0: pinned at 5.0 (self template cancels decay, no drive).
  LayerSpec pinned;
  Coupling self;
  self.kind = CouplingKind::kState;
  self.src_layer = 0;
  self.kernel = TemplateKernel::Center(TemplateWeight::Constant(1.0));
  pinned.couplings.push_back(self);
  pinned.initial_state = {5.0};
  spec.layers.push_back(pinned);
  // Layer 1: dx/dt = -x + 2*f(x0); f saturates at 1 -> fixed point 2.
  LayerSpec reader;
  Coupling a;
  a.kind = CouplingKind::kOutput;
  a.src_layer = 0;
  a.kernel = TemplateKernel::Center(TemplateWeight::Constant(2.0));
  reader.couplings.push_back(a);
  spec.layers.push_back(reader);

  MultilayerCenn<double> net(spec);
  net.Run(2000);
  EXPECT_NEAR(net.StateDoubles(0)[0], 5.0, 1e-9);
  EXPECT_NEAR(net.StateDoubles(1)[0], 2.0, 1e-6);
}

/** Nonlinear weight with control at the source cell (x_kl form). */
TEST(NetworkTest, FactorAtSourceReadsNeighborState)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 2;
  spec.dt = 1e-2;
  LayerSpec layer;
  layer.has_self_decay = false;
  // dx/dt = w(x_src) * x_src with w = square(x_src) at offset +1:
  // cell 0 sees cube of cell 1.
  Coupling c;
  c.kind = CouplingKind::kState;
  c.src_layer = 0;
  c.kernel = TemplateKernel(3);
  TemplateWeight w = TemplateWeight::Nonlinear(
      1.0, 0, NonlinearFunction::Polynomial("sq", {0, 0, 1}));
  w.factors[0].at_source = true;
  c.kernel.At(0, 1) = w;
  layer.couplings.push_back(c);
  layer.initial_state = {0.0, 2.0};
  spec.layers.push_back(layer);

  MultilayerCenn<double> net(spec);
  net.Step();
  // dx0/dt = square(x1) * x1 = 8; one Euler step of 1e-2 -> 0.08.
  EXPECT_NEAR(net.StateDoubles(0)[0], 0.08, 1e-12);
}

TEST(NetworkTest, ResetRuleSetAndAdd)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 2;
  spec.dt = 1e-3;
  LayerSpec v;
  v.name = "v";
  v.has_self_decay = false;
  v.z = 1000.0;  // fast ramp
  v.initial_state = {0.0, -500.0};
  spec.layers.push_back(v);
  LayerSpec u;
  u.name = "u";
  u.has_self_decay = false;
  u.initial_state = {0.0, 0.0};
  spec.layers.push_back(u);
  ResetRule rule;
  rule.trigger_layer = 0;
  rule.threshold = 0.5;
  rule.actions.push_back({0, true, -1.0});
  rule.actions.push_back({1, false, 2.0});
  spec.resets.push_back(rule);

  MultilayerCenn<double> net(spec);
  net.Step();  // cell 0 reaches 1.0 -> reset fires there only
  EXPECT_NEAR(net.StateDoubles(0)[0], -1.0, 1e-12);
  EXPECT_NEAR(net.StateDoubles(1)[0], 2.0, 1e-12);
  EXPECT_NEAR(net.StateDoubles(0)[1], -499.0, 1e-12);
  EXPECT_NEAR(net.StateDoubles(1)[1], 0.0, 1e-12);
}

TEST(NetworkTest, TimeAdvancesByDt)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 1;
  spec.dt = 0.25;
  spec.layers.emplace_back();
  MultilayerCenn<double> net(spec);
  net.Run(8);
  EXPECT_DOUBLE_EQ(net.Time(), 2.0);
  EXPECT_EQ(net.Steps(), 8u);
}

// ---- Spec validation ---------------------------------------------------

TEST(NetworkSpecTest, ValidationCatchesBadLayerIndex)
{
  NetworkSpec spec;
  spec.rows = 2;
  spec.cols = 2;
  LayerSpec layer;
  Coupling c;
  c.src_layer = 3;
  layer.couplings.push_back(c);
  spec.layers.push_back(layer);
  EXPECT_DEATH(spec.Validate(), "out of range");
}

TEST(NetworkSpecTest, ValidationCatchesBadFieldSize)
{
  NetworkSpec spec;
  spec.rows = 2;
  spec.cols = 2;
  LayerSpec layer;
  layer.initial_state = {1.0};  // needs 4
  spec.layers.push_back(layer);
  EXPECT_DEATH(spec.Validate(), "initial state");
}

TEST(NetworkSpecTest, CountersWork)
{
  NetworkSpec spec;
  spec.rows = 2;
  spec.cols = 2;
  LayerSpec layer;
  Coupling c;
  c.kind = CouplingKind::kState;
  c.src_layer = 0;
  c.kernel = TemplateKernel(3);
  c.kernel.At(0, 0) = TemplateWeight::Nonlinear(
      1.0, 0, NonlinearFunction::Polynomial("sq", {0, 0, 1}));
  layer.couplings.push_back(c);
  spec.layers.push_back(layer);
  EXPECT_EQ(spec.CountTemplatesNeedingUpdate(), 1);
  EXPECT_EQ(spec.CountNonlinearWeights(), 1);
  EXPECT_EQ(spec.MaxKernelSide(), 3);
  EXPECT_EQ(spec.Functions().size(), 1u);
}

// ---- DeSolver facade ---------------------------------------------------

TEST(DeSolverTest, PrecisionSelectionAndStateAccess)
{
  NetworkSpec spec;
  spec.rows = 2;
  spec.cols = 2;
  spec.dt = 1e-2;
  spec.layers.emplace_back();

  SolverOptions dopt;
  dopt.precision = Precision::kDouble;
  DeSolver d(spec, dopt);
  EXPECT_EQ(d.GetPrecision(), Precision::kDouble);
  d.SetState(0, 1, 1, 3.5);
  EXPECT_DOUBLE_EQ(d.GetState(0, 1, 1), 3.5);
  d.Run(10);
  EXPECT_EQ(d.Steps(), 10u);
  EXPECT_LT(d.GetState(0, 1, 1), 3.5);  // decays

  SolverOptions fopt;
  fopt.precision = Precision::kFixed32;
  DeSolver f(spec, fopt);
  EXPECT_EQ(f.GetPrecision(), Precision::kFixed32);
  f.SetState(0, 0, 0, 1.0);
  EXPECT_NEAR(f.GetState(0, 0, 0), 1.0, Fixed32::Epsilon());
  EXPECT_DEATH(f.DoubleEngine(), "fixed-point");
}

TEST(DeSolverTest, RunUntilSteadyConvergesOnRelaxation)
{
  // dx/dt = -x + 2: converges to 2 from 0.
  NetworkSpec spec;
  spec.rows = 4;
  spec.cols = 4;
  spec.dt = 0.05;
  LayerSpec layer;
  layer.z = 2.0;
  spec.layers.push_back(layer);

  SolverOptions options;
  options.precision = Precision::kDouble;
  DeSolver solver(spec, options);
  const auto result = solver.RunUntilSteady(1e-9, 100000, 32);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.final_delta, 1e-9);
  EXPECT_NEAR(solver.GetState(0, 0, 0), 2.0, 1e-6);
  EXPECT_EQ(result.steps_taken, solver.Steps());
}

TEST(DeSolverTest, RunUntilSteadyGivesUpOnOscillator)
{
  // An undamped rotation never settles: must report non-convergence.
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 1;
  spec.dt = 0.05;
  LayerSpec a;
  a.name = "a";
  a.initial_state = {1.0};
  Coupling a_self;
  a_self.kind = CouplingKind::kState;
  a_self.src_layer = 0;
  a_self.kernel = TemplateKernel::Center(TemplateWeight::Constant(1.0));
  a.couplings.push_back(a_self);
  Coupling ab;
  ab.kind = CouplingKind::kState;
  ab.src_layer = 1;
  ab.kernel = TemplateKernel::Center(TemplateWeight::Constant(-1.0));
  a.couplings.push_back(ab);
  spec.layers.push_back(a);
  LayerSpec b;
  b.name = "b";
  Coupling b_self;
  b_self.kind = CouplingKind::kState;
  b_self.src_layer = 1;
  b_self.kernel = TemplateKernel::Center(TemplateWeight::Constant(1.0));
  b.couplings.push_back(b_self);
  Coupling ba;
  ba.kind = CouplingKind::kState;
  ba.src_layer = 0;
  ba.kernel = TemplateKernel::Center(TemplateWeight::Constant(1.0));
  b.couplings.push_back(ba);
  spec.layers.push_back(b);

  SolverOptions options;
  options.precision = Precision::kDouble;
  DeSolver solver(spec, options);
  const auto result = solver.RunUntilSteady(1e-6, 500, 16);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.steps_taken, 500u);
}

TEST(DeSolverTest, RunUntilSteadyRejectsBadArgs)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 1;
  spec.layers.emplace_back();
  DeSolver solver(spec, {});
  EXPECT_DEATH(solver.RunUntilSteady(0.0, 10), "positive");
}

TEST(DeSolverTest, WrongEngineAccessorDies)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 1;
  spec.layers.emplace_back();
  SolverOptions dopt;
  dopt.precision = Precision::kDouble;
  DeSolver d(spec, dopt);
  EXPECT_DEATH(d.FixedEngine(), "double");
}

}  // namespace
}  // namespace cenn
