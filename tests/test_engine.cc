/**
 * @file
 * Engine interface tests: backend identity and capability flags, the
 * engine factory's request normalization, the band-phase protocol on
 * MultilayerCenn, the shared CommonOptions parser, the Engine-generic
 * steady-state search, and SolverSession driving an arbitrary engine.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/network.h"
#include "core/solver.h"
#include "kernels/kernel_path.h"
#include "kernels/soa_simd.h"
#include "models/benchmark_model.h"
#include "obs/stat_registry.h"
#include "runtime/engine_factory.h"
#include "runtime/solver_session.h"
#include "util/cli.h"
#include "util/common_options.h"

namespace cenn {
namespace {

SolverProgram
ModelProgram(const std::string& name, std::size_t rows, std::size_t cols)
{
  ModelConfig mc;
  mc.rows = rows;
  mc.cols = cols;
  return MakeProgram(*MakeModel(name, mc));
}

/** CliFlags over a literal argv (argv[0] is the program name). */
CliFlags
Flags(std::vector<std::string> args)
{
  args.insert(args.begin(), "test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) {
    argv.push_back(a.data());
  }
  return CliFlags(static_cast<int>(argv.size()), argv.data());
}

// ---------------------------------------------------------------------------
// Engine factory

TEST(EngineFactoryTest, BuildsEveryBackendBehindTheSameInterface)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);

  EngineRequest req;
  req.engine = "functional";
  EXPECT_STREQ(BuildEngine(program, req)->Kind(), "functional");
  req.engine = "soa";
  EXPECT_STREQ(BuildEngine(program, req)->Kind(), "soa");
  req.engine = "arch";
  EXPECT_STREQ(BuildEngine(program, req)->Kind(), "arch");
  req.engine = "soa";
  req.precision = "float";
  EXPECT_STREQ(BuildEngine(program, req)->Kind(), "soa");
}

TEST(EngineFactoryTest, LegacyEngineSpellingsNormalize)
{
  EngineRequest req;
  req.engine = "double";
  EngineRequest norm = NormalizeEngineRequest(req);
  EXPECT_EQ(norm.engine, "functional");
  EXPECT_EQ(norm.precision, "double");

  req.engine = "fixed";
  norm = NormalizeEngineRequest(req);
  EXPECT_EQ(norm.engine, "functional");
  EXPECT_EQ(norm.precision, "fixed");
}

TEST(EngineFactoryDeathTest, RejectsUnknownAndUnsupportedRequests)
{
  EngineRequest req;
  req.engine = "gpu";
  EXPECT_DEATH(NormalizeEngineRequest(req), "not functional, soa or arch");

  req = EngineRequest{};
  req.precision = "half";
  EXPECT_DEATH(NormalizeEngineRequest(req), "not double, fixed or float");

  req = EngineRequest{};
  req.engine = "functional";
  req.precision = "float";
  EXPECT_DEATH(NormalizeEngineRequest(req), "only available on the soa");

  req = EngineRequest{};
  req.memory = "sram";
  EXPECT_DEATH(NormalizeEngineRequest(req), "not ddr3");
}

TEST(EngineTest, BackendsReportBandSupport)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);
  EngineRequest req;
  req.engine = "functional";
  EXPECT_TRUE(BuildEngine(program, req)->SupportsBands());
  req.engine = "soa";
  EXPECT_TRUE(BuildEngine(program, req)->SupportsBands());
  req.engine = "arch";
  EXPECT_FALSE(BuildEngine(program, req)->SupportsBands());
}

TEST(EngineTest, DefaultBindStatsPublishesStepsAndTime)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);
  EngineRequest req;
  req.engine = "soa";
  const auto engine = BuildEngine(program, req);
  engine->Run(5);

  StatRegistry registry;
  engine->BindStats(&registry, "");
  EXPECT_EQ(registry.Value("sim.steps"), 5.0);
  EXPECT_DOUBLE_EQ(registry.Value("sim.time"),
                   5.0 * program.spec.dt);
}

// ---------------------------------------------------------------------------
// Kernel-path selection

TEST(KernelPathTest, ParsesEveryChoiceAndRejectsUnknown)
{
  KernelPath path = KernelPath::kAuto;
  EXPECT_TRUE(ParseKernelPath("auto", &path));
  EXPECT_EQ(path, KernelPath::kAuto);
  EXPECT_TRUE(ParseKernelPath("scalar", &path));
  EXPECT_EQ(path, KernelPath::kScalar);
  EXPECT_TRUE(ParseKernelPath("blocked", &path));
  EXPECT_EQ(path, KernelPath::kBlocked);
  EXPECT_TRUE(ParseKernelPath("simd", &path));
  EXPECT_EQ(path, KernelPath::kSimd);
  EXPECT_FALSE(ParseKernelPath("avx2", &path));
  EXPECT_FALSE(ParseKernelPath("", &path));
  EXPECT_FALSE(ParseKernelPath(nullptr, &path));
}

TEST(KernelPathTest, EnvOverrideSelectsThePathItNames)
{
  setenv("CENN_KERNEL_PATH", "simd", 1);
  EXPECT_EQ(ResolveKernelPath(KernelPath::kAuto), KernelPath::kSimd);
  EXPECT_EQ(ResolveKernelPath(KernelPath::kBlocked), KernelPath::kSimd);
  setenv("CENN_KERNEL_PATH", "auto", 1);
  EXPECT_EQ(ResolveKernelPath(KernelPath::kAuto), KernelPath::kBlocked);
  setenv("CENN_KERNEL_PATH", "", 1);  // empty means unset
  EXPECT_EQ(ResolveKernelPath(KernelPath::kSimd), KernelPath::kSimd);
  unsetenv("CENN_KERNEL_PATH");
  EXPECT_EQ(ResolveKernelPath(KernelPath::kAuto), KernelPath::kBlocked);
}

TEST(KernelPathDeathTest, UnknownEnvOverrideIsFatalNotAFallback)
{
  // An unrecognized CENN_KERNEL_PATH used to fall back silently to the
  // requested path; a typo must refuse to run instead of timing or
  // debugging the wrong kernels.
  setenv("CENN_KERNEL_PATH", "turbo", 1);
  EXPECT_DEATH(ResolveKernelPath(KernelPath::kAuto),
               "CENN_KERNEL_PATH='turbo' is not a kernel path");
  EXPECT_DEATH(ResolveKernelPath(KernelPath::kAuto),
               "auto.scalar.blocked.simd");
  unsetenv("CENN_KERNEL_PATH");
}

TEST(KernelPathDeathTest, UnknownSimdIsaIsFatalNotAFallback)
{
  // The simd dispatcher probes once per process, so this binary must
  // not construct a simd engine before the forked death-test child
  // reads the environment (no other test here does).
  setenv("CENN_SIMD_ISA", "avx512", 1);
  EXPECT_DEATH(SimdIsaName(), "CENN_SIMD_ISA='avx512' is not available");
  unsetenv("CENN_SIMD_ISA");
}

// ---------------------------------------------------------------------------
// Engine-generic steady-state search

TEST(EngineTest, RunUntilSteadyWorksOnAnyBackend)
{
  const SolverProgram program = ModelProgram("poisson", 12, 12);
  for (const char* kind : {"functional", "soa"}) {
    EngineRequest req;
    req.engine = kind;
    req.precision = "double";
    const auto engine = BuildEngine(program, req);
    const auto result = RunUntilSteady(*engine, 1e-7, 20000);
    EXPECT_TRUE(result.converged) << kind;
    EXPECT_EQ(engine->Steps(), result.steps_taken) << kind;
  }
}

// ---------------------------------------------------------------------------
// Band-phase protocol via the Engine interface

TEST(EngineTest, BandPhasesMatchPlainStepping)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);
  MultilayerCenn<double> stepped(program.spec);
  MultilayerCenn<double> banded(program.spec);

  stepped.Step();
  const std::size_t rows = program.spec.rows;
  banded.RefreshOutputs(0, rows);
  banded.StepBands(0, rows);
  banded.Publish();

  EXPECT_EQ(banded.Steps(), stepped.Steps());
  const auto a = stepped.Snapshot(0);
  const auto b = banded.Snapshot(0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]);
  }
}

// ---------------------------------------------------------------------------
// SolverSession over an arbitrary engine

TEST(EngineSessionTest, SoaSessionMatchesFunctionalSessionChecksum)
{
  const SolverProgram program = ModelProgram("reaction_diffusion", 16, 16);
  SessionConfig sc;
  sc.name = "soa";
  sc.target_steps = 40;
  sc.slice_steps = 8;
  sc.exec.shards = 3;

  EngineRequest req;
  req.engine = "soa";
  SolverSession soa(BuildEngine(program, req), sc);
  soa.RunToTarget();

  sc.name = "ref";
  sc.exec.shards = 1;
  req.engine = "functional";
  SolverSession ref(BuildEngine(program, req), sc);
  ref.RunToTarget();

  EXPECT_EQ(soa.State(), SessionState::kDone);
  EXPECT_EQ(soa.StateChecksum(), ref.StateChecksum());
}

TEST(EngineSessionTest, NonBandEngineClampsShardsWithWarning)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);
  SessionConfig sc;
  sc.name = "arch";
  sc.target_steps = 10;
  sc.slice_steps = 4;
  sc.exec.shards = 4;  // arch cannot band-step; session clamps to 1

  EngineRequest req;
  req.engine = "arch";
  SolverSession session(BuildEngine(program, req), sc);
  EXPECT_EQ(session.RunToTarget(), 10u);
  EXPECT_EQ(session.StepsDone(), 10u);
}

// ---------------------------------------------------------------------------
// CommonOptions

TEST(CommonOptionsTest, ParsesAllGroupsWithDefaults)
{
  CliFlags flags = Flags({"--engine=soa", "--precision=float",
                          "--kernel-path=scalar", "--threads=3",
                          "--stats-out=s.json", "--trace-out=t.json",
                          "--trace-categories=step,conv",
                          "--trace-capacity=1024", "--progress"});
  const CommonOptions opts = ParseCommonOptions(flags);
  flags.Validate();

  EXPECT_EQ(opts.exec.engine, "soa");
  EXPECT_EQ(opts.exec.precision, "float");
  EXPECT_EQ(opts.exec.memory, "ddr3");  // default
  EXPECT_EQ(opts.exec.kernel_path, "scalar");
  EXPECT_EQ(opts.threads, 3);
  EXPECT_EQ(opts.stats_out, "s.json");
  EXPECT_EQ(opts.trace_out, "t.json");
  EXPECT_EQ(opts.trace_categories, "step,conv");
  EXPECT_EQ(opts.trace_capacity, 1024u);
  EXPECT_TRUE(opts.progress);
  EXPECT_FALSE(opts.self_profile);
}

TEST(CommonOptionsDeathTest, RemovedStatsAliasIsRejected)
{
  // The --stats alias is gone; it must die in Validate like any other
  // unknown flag, not silently select a stats file.
  CliFlags flags = Flags({"--stats=legacy.txt"});
  const CommonOptions opts = ParseCommonOptions(flags, kStatsFlags);
  EXPECT_TRUE(opts.stats_out.empty());
  EXPECT_DEATH(flags.Validate(), "stats");
}

TEST(CommonOptionsTest, ParsesGuardGroup)
{
  CliFlags flags = Flags({"--guard", "--guard-max-abs=500",
                          "--guard-max-rms=12.5", "--guard-max-sat=9",
                          "--guard-check-every=4"});
  const CommonOptions opts = ParseCommonOptions(flags, kGuardFlags);
  flags.Validate();
  EXPECT_TRUE(opts.guard);
  EXPECT_EQ(opts.guard_max_abs, 500.0);
  EXPECT_EQ(opts.guard_max_rms, 12.5);
  EXPECT_EQ(opts.guard_max_sat, 9u);
  EXPECT_EQ(opts.guard_check_every, 4u);
}

TEST(CommonOptionsDeathTest, GuardFlagValidation)
{
  CliFlags bad_abs = Flags({"--guard-max-abs=-1"});
  EXPECT_DEATH(ParseCommonOptions(bad_abs, kGuardFlags), "guard-max-abs");
  CliFlags bad_cadence = Flags({"--guard-check-every=0"});
  EXPECT_DEATH(ParseCommonOptions(bad_cadence, kGuardFlags),
               "guard-check-every");
}

TEST(CommonOptionsDeathTest, FlagOutsideRequestedGroupsStaysUnknown)
{
  // A tool that opted out of trace flags must reject them loudly
  // (CliFlags::Validate) instead of silently swallowing the flag.
  CliFlags flags = Flags({"--trace-out=t.json"});
  ParseCommonOptions(flags, kStatsFlags);
  EXPECT_DEATH(flags.Validate(), "trace-out");
}

TEST(CommonOptionsTest, CallerDefaultsSurviveWhenFlagsAbsent)
{
  CliFlags flags = Flags({});
  CommonOptions defaults;
  defaults.threads = 2;
  defaults.exec.precision = "fixed";
  const CommonOptions opts =
      ParseCommonOptions(flags, kAllCommonFlags, defaults);
  flags.Validate();
  EXPECT_EQ(opts.threads, 2);
  EXPECT_EQ(opts.exec.precision, "fixed");
}

TEST(CommonOptionsTest, ExecFlagOverridesLegacyAliases)
{
  // Precedence: defaults < legacy long flags < --exec < CENN_EXEC.
  CliFlags flags =
      Flags({"--engine=arch", "--kernel-path=scalar",
             "--exec=soa:simd:shards=4"});
  const CommonOptions opts = ParseCommonOptions(flags, kEngineFlags);
  flags.Validate();
  EXPECT_EQ(opts.exec.engine, "soa");
  EXPECT_EQ(opts.exec.kernel_path, "simd");
  EXPECT_EQ(opts.exec.shards, 4);
}

TEST(CommonOptionsTest, CennExecEnvOutranksExecFlag)
{
  ::setenv("CENN_EXEC", "shards=2:pin=cores", /*overwrite=*/1);
  CliFlags flags = Flags({"--exec=soa:double:shards=8"});
  const CommonOptions opts = ParseCommonOptions(flags, kEngineFlags);
  ::unsetenv("CENN_EXEC");
  flags.Validate();
  // Env overrides only the fields it mentions; the flag's survive.
  EXPECT_EQ(opts.exec.engine, "soa");
  EXPECT_EQ(opts.exec.precision, "double");
  EXPECT_EQ(opts.exec.shards, 2);
  EXPECT_EQ(opts.exec.pin, "cores");
}

// ---------------------------------------------------------------------------
// ExecPolicy

TEST(ExecPolicyTest, ParsesBareTokensAndKeyValues)
{
  ExecPolicy policy;
  std::string error;
  unsigned fields = 0;
  ASSERT_TRUE(ParseExecPolicy("soa:simd:shards=8:pin=numa", &policy,
                              &error, &fields))
      << error;
  EXPECT_EQ(policy.engine, "soa");
  EXPECT_EQ(policy.kernel_path, "simd");
  EXPECT_EQ(policy.shards, 8);
  EXPECT_EQ(policy.pin, "numa");
  EXPECT_EQ(fields, kExecEngineField | kExecKernelField |
                        kExecShardsField | kExecPinField);

  // A bare double/fixed sets the *precision* (legacy engine=double
  // meant "functional at double").
  ExecPolicy legacy;
  ASSERT_TRUE(ParseExecPolicy("double", &legacy, &error)) << error;
  EXPECT_EQ(legacy.engine, "functional");
  EXPECT_EQ(legacy.precision, "double");

  ExecPolicy keyed;
  ASSERT_TRUE(ParseExecPolicy(
      "engine=soa:precision=float:kernel=blocked:block=8", &keyed, &error))
      << error;
  EXPECT_EQ(keyed.engine, "soa");
  EXPECT_EQ(keyed.precision, "float");
  EXPECT_EQ(keyed.kernel_path, "blocked");
  EXPECT_EQ(keyed.block_steps, 8);
}

TEST(ExecPolicyTest, MergeOverridesOnlyMentionedFields)
{
  ExecPolicy policy;
  std::string error;
  ASSERT_TRUE(ParseExecPolicy("soa:double:simd:shards=4", &policy, &error));
  // Second parse into the same policy: merge semantics.
  ASSERT_TRUE(ParseExecPolicy("shards=2:pin=cores", &policy, &error));
  EXPECT_EQ(policy.engine, "soa");
  EXPECT_EQ(policy.precision, "double");
  EXPECT_EQ(policy.kernel_path, "simd");
  EXPECT_EQ(policy.shards, 2);
  EXPECT_EQ(policy.pin, "cores");
}

TEST(ExecPolicyTest, RejectsUnknownTokensDuplicatesAndBadCounts)
{
  ExecPolicy policy;
  std::string error;
  EXPECT_FALSE(ParseExecPolicy("warp9", &policy, &error));
  EXPECT_NE(error.find("unknown exec token"), std::string::npos);
  EXPECT_FALSE(ParseExecPolicy("soa:functional", &policy, &error));
  EXPECT_NE(error.find("twice"), std::string::npos);
  EXPECT_FALSE(ParseExecPolicy("shards=0", &policy, &error));
  EXPECT_FALSE(ParseExecPolicy("block=x", &policy, &error));
  EXPECT_FALSE(ParseExecPolicy("engine=gpu", &policy, &error));
  EXPECT_FALSE(ParseExecPolicy("", &policy, &error));
  EXPECT_FALSE(ParseExecPolicy("soa::simd", &policy, &error));
}

TEST(ExecPolicyTest, FormatRoundTripsAndOmitsDefaults)
{
  // Defaults collapse to just the engine name.
  EXPECT_EQ(FormatExecPolicy(ExecPolicy{}), "functional");

  ExecPolicy full;
  full.engine = "soa";
  full.precision = "double";
  full.kernel_path = "simd";
  full.shards = 8;
  full.pin = "numa";
  full.block_steps = 4;
  const std::string text = FormatExecPolicy(full);
  EXPECT_EQ(text, "soa:double:simd:shards=8:pin=numa:block=4");

  ExecPolicy reparsed;
  std::string error;
  ASSERT_TRUE(ParseExecPolicy(text, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed, full);
}

TEST(ExecPolicyTest, ValidateEnforcesCrossFieldRules)
{
  std::string error;
  ExecPolicy ok;
  ok.engine = "soa";
  ok.precision = "double";
  ok.block_steps = 4;
  EXPECT_TRUE(ValidateExecPolicy(ok, &error)) << error;

  ExecPolicy float_functional;
  float_functional.precision = "float";
  EXPECT_FALSE(ValidateExecPolicy(float_functional, &error));
  EXPECT_NE(error.find("float"), std::string::npos);

  ExecPolicy block_functional;
  block_functional.block_steps = 4;
  EXPECT_FALSE(ValidateExecPolicy(block_functional, &error));
  EXPECT_NE(error.find("temporal blocking"), std::string::npos);

  ExecPolicy block_fixed;
  block_fixed.engine = "soa";
  block_fixed.precision = "fixed";
  block_fixed.block_steps = 4;
  EXPECT_FALSE(ValidateExecPolicy(block_fixed, &error));
}

TEST(ExecPolicyTest, KernelChoicesStayInSyncWithKernelPathParser)
{
  // The policy's kernel choice list and kernels/kernel_path.h must
  // accept exactly the same spellings (the policy layer cannot
  // include the kernel header; this test is the sync contract).
  for (const char* name : {"auto", "scalar", "blocked", "simd"}) {
    ExecPolicy policy;
    std::string error;
    ASSERT_TRUE(ParseExecPolicy(std::string("kernel=") + name, &policy,
                                &error))
        << name << ": " << error;
    KernelPath path = KernelPath::kAuto;
    EXPECT_TRUE(ParseKernelPath(name, &path)) << name;
    EXPECT_NE(std::string(kKernelPathChoices).find(name),
              std::string::npos)
        << name;
  }
}

TEST(ExecPolicyTest, ToEngineRequestCanonicalizes)
{
  ExecPolicy policy;
  std::string error;
  ASSERT_TRUE(
      ParseExecPolicy("soa:double:simd:shards=8", &policy, &error));
  const EngineRequest req = ToEngineRequest(policy);
  EXPECT_EQ(req.engine, "soa");
  EXPECT_EQ(req.precision, "double");
  EXPECT_EQ(req.memory, "ddr3");
  EXPECT_EQ(req.kernel_path, KernelPath::kSimd);

  // Empty policy precision keeps the request's engine default.
  const EngineRequest defaulted = ToEngineRequest(ExecPolicy{});
  EXPECT_EQ(defaulted.precision, "fixed");
}

TEST(ExecPolicyDeathTest, ToEngineRequestRejectsInvalidPolicies)
{
  ExecPolicy bad;
  bad.precision = "float";  // float is soa-only
  EXPECT_DEATH(ToEngineRequest(bad), "exec policy");
}

}  // namespace
}  // namespace cenn
