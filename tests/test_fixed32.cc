/**
 * @file
 * Unit and property tests for the Q16.16 saturating fixed-point type —
 * the accelerator's 32-bit state format (upper 16 integer bits double
 * as the LUT index).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "fixed/fixed32.h"

namespace cenn {
namespace {

TEST(Fixed32Test, ZeroByDefault)
{
  EXPECT_EQ(Fixed32().raw(), 0);
  EXPECT_EQ(Fixed32().ToDouble(), 0.0);
}

TEST(Fixed32Test, FromIntExactForSmallIntegers)
{
  for (int v : {-32768, -100, -1, 0, 1, 7, 100, 32767}) {
    EXPECT_EQ(Fixed32::FromInt(v).ToDouble(), static_cast<double>(v));
  }
}

TEST(Fixed32Test, FromDoubleRoundsToNearest)
{
  // One LSB is 2^-16; values within half an LSB round to the same raw.
  const double eps = Fixed32::Epsilon();
  EXPECT_EQ(Fixed32::FromDouble(1.0 + 0.4 * eps).raw(),
            Fixed32::FromInt(1).raw());
  EXPECT_EQ(Fixed32::FromDouble(1.0 + 0.6 * eps).raw(),
            Fixed32::FromInt(1).raw() + 1);
}

TEST(Fixed32Test, RoundTripErrorBounded)
{
  for (double v = -100.0; v <= 100.0; v += 0.7137) {
    const double rt = Fixed32::FromDouble(v).ToDouble();
    EXPECT_NEAR(rt, v, Fixed32::Epsilon() / 2.0 + 1e-12) << v;
  }
}

TEST(Fixed32Test, UpperBitsAreIntegerPart)
{
  EXPECT_EQ(Fixed32::FromDouble(3.5).UpperBits(), 3u);
  EXPECT_EQ(Fixed32::FromDouble(1024.25).UpperBits(), 1024u);
  // Negative values: two's complement upper half.
  EXPECT_EQ(Fixed32::FromDouble(-1.0).UpperBits(), 0xffffu);
}

TEST(Fixed32Test, LowerBitsZeroExactlyOnIntegers)
{
  EXPECT_EQ(Fixed32::FromInt(5).LowerBits(), 0u);
  EXPECT_NE(Fixed32::FromDouble(5.5).LowerBits(), 0u);
  EXPECT_EQ(Fixed32::FromDouble(-3.0).LowerBits(), 0u);
}

TEST(Fixed32Test, FloorInt)
{
  EXPECT_EQ(Fixed32::FromDouble(2.75).FloorInt(), 2);
  EXPECT_EQ(Fixed32::FromDouble(-2.25).FloorInt(), -3);
  EXPECT_EQ(Fixed32::FromInt(-2).FloorInt(), -2);
}

TEST(Fixed32Test, AdditionSaturates)
{
  const Fixed32 big = Fixed32::FromDouble(30000.0);
  EXPECT_EQ((big + big).raw(), INT32_MAX);
  EXPECT_EQ(((-big) + (-big)).raw(), INT32_MIN);
}

TEST(Fixed32Test, MultiplicationSaturates)
{
  const Fixed32 big = Fixed32::FromDouble(1000.0);
  EXPECT_EQ((big * big).raw(), INT32_MAX);
  EXPECT_EQ((big * (-big)).raw(), INT32_MIN);
}

TEST(Fixed32Test, NegationOfMinSaturates)
{
  EXPECT_EQ((-Fixed32::Min()).raw(), INT32_MAX);
  // Pin the asymmetric-range edge cases: -Min() and Abs(Min()) both
  // land exactly on Max() (the hardware clamps, never wraps).
  EXPECT_EQ(-Fixed32::Min(), Fixed32::Max());
  EXPECT_EQ(Abs(Fixed32::Min()), Fixed32::Max());
  // Max() negates exactly (Min()+1 is representable) and involutes.
  EXPECT_EQ((-Fixed32::Max()).raw(), INT32_MIN + 1);
  EXPECT_EQ(-(-Fixed32::Max()), Fixed32::Max());
}

TEST(Fixed32Test, SaturationCounterCountsEveryClampingOp)
{
  std::uint64_t events = 0;
  std::uint64_t* previous = Fixed32::ExchangeSaturationCounter(&events);
  EXPECT_EQ(previous, nullptr);

  const Fixed32 big = Fixed32::FromDouble(30000.0);
  std::ignore = big + big;  // add overflow
  EXPECT_EQ(events, 1u);
  std::ignore = (-big) - big;  // sub underflow
  EXPECT_EQ(events, 2u);
  std::ignore = big * big;  // mul overflow
  EXPECT_EQ(events, 3u);
  std::ignore = -Fixed32::Min();  // negation overflow
  EXPECT_EQ(events, 4u);
  std::ignore = big / Fixed32::FromDouble(0.5);  // quotient overflow
  EXPECT_EQ(events, 5u);
  std::ignore = Fixed32::FromInt(100000);  // int conversion clamp
  EXPECT_EQ(events, 6u);
  std::ignore = Fixed32::FromDouble(1e9);  // double conversion clamp
  EXPECT_EQ(events, 7u);
  std::ignore = Abs(Fixed32::Min());  // Abs(Min) clamps via negation
  EXPECT_EQ(events, 8u);

  // Non-saturating arithmetic must not count.
  std::ignore = Fixed32::FromDouble(1.5) * Fixed32::FromDouble(2.0);
  std::ignore = Fixed32::FromInt(3) + Fixed32::FromInt(4);
  EXPECT_EQ(events, 8u);

  // Uninstall restores the previous (null) sink; clamps stop counting.
  EXPECT_EQ(Fixed32::ExchangeSaturationCounter(previous), &events);
  std::ignore = big + big;
  EXPECT_EQ(events, 8u);
}

TEST(Fixed32Test, DivisionBasics)
{
  const Fixed32 a = Fixed32::FromDouble(7.5);
  const Fixed32 b = Fixed32::FromDouble(2.5);
  EXPECT_NEAR((a / b).ToDouble(), 3.0, Fixed32::Epsilon());
}

TEST(Fixed32Test, DivisionByZeroDies)
{
  EXPECT_DEATH(Fixed32::FromInt(1) / Fixed32(), "division by zero");
}

TEST(Fixed32Test, FromDoubleNanPanics)
{
  EXPECT_DEATH(Fixed32::FromDouble(std::nan("")), "NaN");
}

TEST(Fixed32Test, ComparisonOperators)
{
  const Fixed32 a = Fixed32::FromDouble(1.5);
  const Fixed32 b = Fixed32::FromDouble(2.5);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, Fixed32::FromDouble(1.5));
  EXPECT_NE(a, b);
}

TEST(Fixed32Test, AbsAndClamp)
{
  EXPECT_EQ(Abs(Fixed32::FromDouble(-3.25)).ToDouble(), 3.25);
  EXPECT_EQ(Abs(Fixed32::FromDouble(3.25)).ToDouble(), 3.25);
  const Fixed32 lo = Fixed32::FromInt(-1);
  const Fixed32 hi = Fixed32::FromInt(1);
  EXPECT_EQ(Clamp(Fixed32::FromInt(5), lo, hi), hi);
  EXPECT_EQ(Clamp(Fixed32::FromInt(-5), lo, hi), lo);
  EXPECT_EQ(Clamp(Fixed32::FromDouble(0.5), lo, hi).ToDouble(), 0.5);
}

TEST(Fixed32Test, StandardOutputNonlinearity)
{
  // Eq. (2): identity inside [-1, 1], clipped outside.
  EXPECT_EQ(StandardOutput(Fixed32::FromDouble(0.75)).ToDouble(), 0.75);
  EXPECT_EQ(StandardOutput(Fixed32::FromDouble(2.0)).ToDouble(), 1.0);
  EXPECT_EQ(StandardOutput(Fixed32::FromDouble(-9.0)).ToDouble(), -1.0);
  EXPECT_EQ(StandardOutput(Fixed32::FromInt(1)).ToDouble(), 1.0);
}

TEST(Fixed32Test, ToStringRendersDecimal)
{
  EXPECT_EQ(Fixed32::FromDouble(1.5).ToString(), "1.500000");
}

// ---- Property sweeps -------------------------------------------------

class Fixed32PropertyTest
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(Fixed32PropertyTest, ArithmeticMatchesDoubleWithinTolerance)
{
  const auto [x, y] = GetParam();
  const Fixed32 fx = Fixed32::FromDouble(x);
  const Fixed32 fy = Fixed32::FromDouble(y);
  const double tol = Fixed32::Epsilon();

  EXPECT_NEAR((fx + fy).ToDouble(), x + y, 2.0 * tol);
  EXPECT_NEAR((fx - fy).ToDouble(), x - y, 2.0 * tol);
  // Multiplication error grows with operand magnitude.
  const double mul_tol =
      tol * (2.0 + std::abs(x) + std::abs(y));
  EXPECT_NEAR((fx * fy).ToDouble(), x * y, mul_tol);
}

TEST_P(Fixed32PropertyTest, CommutativityAndIdentity)
{
  const auto [x, y] = GetParam();
  const Fixed32 fx = Fixed32::FromDouble(x);
  const Fixed32 fy = Fixed32::FromDouble(y);
  EXPECT_EQ((fx + fy).raw(), (fy + fx).raw());
  EXPECT_EQ((fx * fy).raw(), (fy * fx).raw());
  EXPECT_EQ((fx + Fixed32()).raw(), fx.raw());
  EXPECT_EQ((fx * Fixed32::FromInt(1)).raw(), fx.raw());
}

TEST_P(Fixed32PropertyTest, NegationIsInvolutionAwayFromMin)
{
  const auto [x, y] = GetParam();
  static_cast<void>(y);
  const Fixed32 fx = Fixed32::FromDouble(x);
  EXPECT_EQ((-(-fx)).raw(), fx.raw());
}

INSTANTIATE_TEST_SUITE_P(
    OperandSweep, Fixed32PropertyTest,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{1.0, -1.0},
                      std::pair{3.14159, 2.71828},
                      std::pair{-65.43, 0.001}, std::pair{120.0, -77.0},
                      std::pair{0.015625, 0.015625},
                      std::pair{-0.5, 170.25}, std::pair{30.0, -0.04},
                      std::pair{150.0, -150.0},
                      std::pair{1e-4, 1e-4}));

}  // namespace
}  // namespace cenn
