/**
 * @file
 * Numerical-health subsystem tests: HealthGuard trip conditions and
 * scan cadence, saturation-event plumbing from Fixed32 into a guard,
 * the fault-spec grammar, deterministic fault injection, and the
 * guard-tripped SolverSession lifecycle (kFaulted -> restore ->
 * bit-identical resume).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "core/network.h"
#include "fixed/fixed32.h"
#include "health/fault_injector.h"
#include "health/health_guard.h"
#include "models/benchmark_model.h"
#include "obs/stat_registry.h"
#include "runtime/engine_factory.h"
#include "runtime/solver_session.h"

namespace cenn {
namespace {

SolverProgram
ModelProgram(const std::string& name, std::size_t rows, std::size_t cols)
{
  ModelConfig mc;
  mc.rows = rows;
  mc.cols = cols;
  return MakeProgram(*MakeModel(name, mc));
}

/** Overwrites one cell of layer 0 with `value` (corruption helper). */
void
PoisonCell(Engine& engine, double value)
{
  std::vector<double> state = engine.Snapshot(0);
  state[state.size() / 2] = value;
  engine.RestoreState(0, state);
}

// ---------------------------------------------------------------------------
// HealthGuard trip conditions

TEST(HealthGuardTest, HealthyEngineScansClean)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);
  MultilayerCenn<double> engine(program.spec);
  engine.Run(10);

  HealthGuard guard;
  EXPECT_TRUE(guard.Scan(engine));
  const HealthReport report = guard.Report();
  EXPECT_EQ(report.checks_run, 1u);
  EXPECT_FALSE(report.diverged);
  EXPECT_EQ(report.nan_cells, 0u);
  EXPECT_GT(report.max_abs, 0.0);
  EXPECT_GT(report.rms, 0.0);
  EXPECT_TRUE(report.reason.empty());
}

TEST(HealthGuardTest, TripsOnNaNAndStaysTripped)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);
  MultilayerCenn<double> engine(program.spec);
  engine.Run(5);
  PoisonCell(engine, std::numeric_limits<double>::quiet_NaN());

  HealthGuard guard;
  EXPECT_FALSE(guard.Scan(engine));
  EXPECT_TRUE(guard.Tripped());
  const HealthReport report = guard.Report();
  EXPECT_EQ(report.reason, "nan");
  EXPECT_EQ(report.nan_cells, 1u);
  EXPECT_EQ(report.diverged_at_step, 5u);
  // Sticky: further scans report unhealthy without rescanning.
  EXPECT_FALSE(guard.Scan(engine));
  EXPECT_EQ(guard.Report().checks_run, 1u);
}

TEST(HealthGuardTest, TripsOnInfAndMaxAbsAndRms)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);
  MultilayerCenn<double> inf_engine(program.spec);
  PoisonCell(inf_engine, std::numeric_limits<double>::infinity());
  HealthGuard inf_guard;
  EXPECT_FALSE(inf_guard.Scan(inf_engine));
  EXPECT_EQ(inf_guard.Report().reason, "inf");

  MultilayerCenn<double> big_engine(program.spec);
  PoisonCell(big_engine, 5e4);
  HealthGuard abs_guard;  // default max_abs = 1e4
  EXPECT_FALSE(abs_guard.Scan(big_engine));
  EXPECT_EQ(abs_guard.Report().reason, "max_abs");

  HealthGuardConfig rms_cfg;
  rms_cfg.max_abs = 0.0;  // 0 disables, so the RMS check decides
  rms_cfg.max_rms = 1e-12;
  MultilayerCenn<double> rms_engine(program.spec);
  HealthGuard rms_guard(rms_cfg);
  EXPECT_FALSE(rms_guard.Scan(rms_engine));
  EXPECT_EQ(rms_guard.Report().reason, "max_rms");
}

TEST(HealthGuardTest, DisabledThresholdsNeverTrip)
{
  HealthGuardConfig cfg;
  cfg.max_abs = 0.0;
  cfg.max_rms = 0.0;
  cfg.max_sat_events = 0;
  const SolverProgram program = ModelProgram("heat", 12, 12);
  MultilayerCenn<double> engine(program.spec);
  PoisonCell(engine, 1e100);  // finite, so only max_abs could catch it

  HealthGuard guard(cfg);
  EXPECT_TRUE(guard.Scan(engine));
  guard.AddSatEvents(1000000);
  EXPECT_TRUE(guard.Scan(engine));
}

TEST(HealthGuardTest, TripsOnSaturationBudget)
{
  HealthGuardConfig cfg;
  cfg.max_sat_events = 5;
  const SolverProgram program = ModelProgram("heat", 12, 12);
  MultilayerCenn<double> engine(program.spec);

  HealthGuard guard(cfg);
  guard.AddSatEvents(5);
  EXPECT_TRUE(guard.Scan(engine));  // at the budget, not over it
  guard.AddSatEvents(1);
  EXPECT_FALSE(guard.Scan(engine));
  EXPECT_EQ(guard.Report().reason, "sat_events");
  EXPECT_EQ(guard.Report().sat_events, 6u);
}

TEST(HealthGuardTest, MaybeScanHonorsCadence)
{
  HealthGuardConfig cfg;
  cfg.check_every = 8;
  const SolverProgram program = ModelProgram("heat", 12, 12);
  MultilayerCenn<double> engine(program.spec);

  HealthGuard guard(cfg);
  EXPECT_TRUE(guard.MaybeScan(engine));  // first call always scans
  EXPECT_EQ(guard.Report().checks_run, 1u);
  engine.Run(4);
  EXPECT_TRUE(guard.MaybeScan(engine));  // 4 < 8: skipped
  EXPECT_EQ(guard.Report().checks_run, 1u);
  engine.Run(4);
  EXPECT_TRUE(guard.MaybeScan(engine));  // 8 >= 8: scans
  EXPECT_EQ(guard.Report().checks_run, 2u);
}

TEST(HealthGuardTest, ResetClearsTripAndTallies)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);
  MultilayerCenn<double> engine(program.spec);
  PoisonCell(engine, std::numeric_limits<double>::quiet_NaN());

  HealthGuard guard;
  guard.AddSatEvents(3);
  EXPECT_FALSE(guard.Scan(engine));
  guard.Reset();
  EXPECT_FALSE(guard.Tripped());
  EXPECT_EQ(guard.SatEvents(), 0u);
  EXPECT_TRUE(guard.Report().reason.empty());

  // A clean engine scans healthy again after the reset.
  MultilayerCenn<double> clean(program.spec);
  EXPECT_TRUE(guard.Scan(clean));
}

TEST(HealthGuardTest, BindStatsPublishesHealthSubtree)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);
  MultilayerCenn<double> engine(program.spec);
  PoisonCell(engine, std::numeric_limits<double>::quiet_NaN());

  HealthGuard guard;
  StatRegistry registry;
  guard.BindStats(&registry, "");
  guard.Scan(engine);

  EXPECT_EQ(registry.Value("health.checks_run"), 1.0);
  EXPECT_EQ(registry.Value("health.nan_cells"), 1.0);
  EXPECT_EQ(registry.Value("health.diverged"), 1.0);
  EXPECT_EQ(registry.Value("health.diverged_at_step"), 0.0);
  EXPECT_EQ(registry.Value("health.sat_events"), 0.0);
}

// ---------------------------------------------------------------------------
// Fixed32 saturation counting -> guard plumbing

TEST(ScopedSatCounterTest, DrainsThreadSaturationsIntoGuard)
{
  HealthGuard guard;
  {
    ScopedSatCounter scope(&guard);
    const Fixed32 sum = Fixed32::Max() + Fixed32::Max();  // clamps
    EXPECT_EQ(sum, Fixed32::Max());
    std::ignore = -Fixed32::Min();  // clamps
    EXPECT_EQ(guard.SatEvents(), 0u);  // drained on scope exit only
  }
  EXPECT_EQ(guard.SatEvents(), 2u);
}

TEST(ScopedSatCounterTest, NullGuardIsANoOp)
{
  ScopedSatCounter scope(nullptr);
  const Fixed32 sum = Fixed32::Max() + Fixed32::Max();
  EXPECT_EQ(sum, Fixed32::Max());  // no sink installed, no crash
}

// ---------------------------------------------------------------------------
// Fault-spec grammar

TEST(FaultSpecTest, ParsesClauses)
{
  const auto specs = ParseFaultSpec("flip@150,crash@40x2,rd:crash@7");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].kind, FaultKind::kFlip);
  EXPECT_EQ(specs[0].step, 150u);
  EXPECT_EQ(specs[0].count, 1);
  EXPECT_TRUE(specs[0].job.empty());
  EXPECT_EQ(specs[1].kind, FaultKind::kCrash);
  EXPECT_EQ(specs[1].step, 40u);
  EXPECT_EQ(specs[1].count, 2);
  EXPECT_EQ(specs[2].job, "rd");
  EXPECT_EQ(specs[2].step, 7u);

  EXPECT_EQ(FaultSpecToString(specs), "flip@150,crash@40x2,rd:crash@7");
  EXPECT_TRUE(ParseFaultSpec("").empty());
}

TEST(FaultSpecDeathTest, MalformedSpecsDie)
{
  EXPECT_DEATH(ParseFaultSpec("flip"), "no '@step'");
  EXPECT_DEATH(ParseFaultSpec("melt@10"), "unknown kind");
  EXPECT_DEATH(ParseFaultSpec("flip@ten"), "bad number");
  EXPECT_DEATH(ParseFaultSpec("crash@10x0"), "count");
  EXPECT_DEATH(ParseFaultSpec(":flip@10"), "empty job filter");
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjectorTest, FlipIsDeterministicAndDetectable)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);
  auto make_flipped = [&program] {
    MultilayerCenn<double> engine(program.spec);
    engine.Run(10);
    FaultInjector injector(ParseFaultSpec("flip@10"), /*seed=*/7);
    injector.PlanFor("job", 0)->FireDue(engine);
    EXPECT_EQ(injector.TotalFired(), 1u);
    return engine.Snapshot(0);
  };

  const std::vector<double> a = make_flipped();
  const std::vector<double> b = make_flipped();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << i;  // same (spec, seed, job) => same flip
  }

  // The corruption is exactly the kind the guard must catch.
  MultilayerCenn<double> engine(program.spec);
  engine.Run(10);
  FaultInjector injector(ParseFaultSpec("flip@10"), 7);
  HealthGuard guard;
  EXPECT_TRUE(guard.Scan(engine));
  injector.PlanFor("job", 0)->FireDue(engine);
  EXPECT_FALSE(guard.Scan(engine));
  EXPECT_EQ(guard.Report().reason, "max_abs");
}

TEST(FaultInjectorTest, CrashThrowsAndFiresOncePerLifetime)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);
  MultilayerCenn<double> engine(program.spec);
  engine.Run(20);

  FaultInjector injector(ParseFaultSpec("crash@15"), 7);
  FaultInjector::Plan* plan = injector.PlanFor("job", 0);
  try {
    plan->FireDue(engine);
    FAIL() << "expected FaultCrash";
  } catch (const FaultCrash& crash) {
    EXPECT_EQ(crash.job, "job");
    EXPECT_EQ(crash.step, 20u);
  }
  // Transient: a retried attempt re-crosses step 15 without re-faulting.
  plan->FireDue(engine);
  EXPECT_EQ(plan->Fired(), 1u);
  EXPECT_FALSE(plan->Pending());
}

TEST(FaultInjectorTest, FiltersByJobAndWaitsForStep)
{
  const SolverProgram program = ModelProgram("heat", 12, 12);
  MultilayerCenn<double> engine(program.spec);
  engine.Run(5);

  FaultInjector injector(ParseFaultSpec("other:crash@1,this:crash@30"), 7);
  FaultInjector::Plan* plan = injector.PlanFor("this", 1);
  plan->FireDue(engine);  // other's fault filtered out; step 30 not due
  EXPECT_EQ(plan->Fired(), 0u);
  EXPECT_TRUE(plan->Pending());
  engine.Run(25);
  EXPECT_THROW(plan->FireDue(engine), FaultCrash);
}

// ---------------------------------------------------------------------------
// SolverSession under a guard: kFaulted -> restore -> identical resume

TEST(HealthSessionTest, GuardTripFaultsSessionAndCheckpointRestoreResumes)
{
  const std::string dir =
      testing::TempDir() + "cenn_health_session";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string ckpt = dir + "/s.ckpt";

  const SolverProgram program = ModelProgram("reaction_diffusion", 12, 12);
  EngineRequest req;
  req.engine = "functional";
  req.precision = "double";

  // Reference: clean run to 60 steps.
  SessionConfig ref_cfg;
  ref_cfg.name = "ref";
  ref_cfg.target_steps = 60;
  ref_cfg.slice_steps = 10;
  SolverSession ref(BuildEngine(program, req), ref_cfg);
  ref.RunToTarget();
  ASSERT_EQ(ref.State(), SessionState::kDone);

  // Guarded run with a post-slice hook corrupting state at step 30.
  SessionConfig cfg;
  cfg.name = "guarded";
  cfg.target_steps = 60;
  cfg.slice_steps = 10;
  cfg.checkpoint_every = 10;
  cfg.checkpoint_path = ckpt;
  bool poisoned = false;  // corrupt once, not again on the resumed pass
  cfg.post_slice_hook = [&poisoned](Engine& engine) {
    if (!poisoned && engine.Steps() == 30) {
      poisoned = true;
      PoisonCell(engine, 1e6);
    }
  };

  HealthGuardConfig gcfg;
  gcfg.check_every = 1;
  HealthGuard guard(gcfg);
  SolverSession session(BuildEngine(program, req), cfg);
  session.Backend().AttachHealthGuard(&guard);

  // The trip lands at step 30; the corrupt slice is NOT checkpointed.
  EXPECT_EQ(session.StepN(60), 30u);
  EXPECT_EQ(session.State(), SessionState::kFaulted);
  EXPECT_TRUE(guard.Tripped());
  EXPECT_EQ(guard.Report().diverged_at_step, 30u);
  EXPECT_EQ(session.StepN(10), 0u);  // faulted sessions refuse to step

  StatRegistry registry;
  session.BindStats(&registry);
  const std::string prefix =
      "runtime.session" + std::to_string(session.Id()) + ".";
  EXPECT_EQ(registry.Value(prefix + "faults"), 1.0);
  EXPECT_EQ(registry.Value(prefix + "health.diverged"), 1.0);

  // Restore the last good checkpoint (step 20: the hook fires before
  // the step-30 checkpoint would have been written) and resume; the
  // guard is reset and the stitched run matches the reference exactly.
  ASSERT_TRUE(session.TryRestoreFromFile(ckpt));
  EXPECT_EQ(session.State(), SessionState::kIdle);
  EXPECT_FALSE(guard.Tripped());
  EXPECT_EQ(session.StepsDone(), 20u);
  session.RunToTarget();
  EXPECT_EQ(session.State(), SessionState::kDone);
  EXPECT_EQ(session.StateChecksum(), ref.StateChecksum());
}

}  // namespace
}  // namespace cenn
