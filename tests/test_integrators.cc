/**
 * @file
 * Time-integrator tests: the Heun (predictor-corrector) option must be
 * second-order accurate where explicit Euler is first-order, agree with
 * Euler in the dt -> 0 limit, and work across precisions and models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/network.h"
#include "mapping/mapper.h"
#include "models/benchmark_model.h"

namespace cenn {
namespace {

/** Error at t = 1 of dx/dt = -x, x0 = 1, for a given scheme and dt. */
double
DecayError(Integrator integrator, double dt)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 1;
  spec.dt = dt;
  spec.integrator = integrator;
  LayerSpec layer;
  layer.initial_state = {1.0};
  spec.layers.push_back(layer);

  MultilayerCenn<double> net(spec);
  net.Run(static_cast<std::uint64_t>(std::llround(1.0 / dt)));
  return std::abs(net.StateDoubles(0)[0] - std::exp(-1.0));
}

TEST(IntegratorTest, EulerIsFirstOrder)
{
  const double e1 = DecayError(Integrator::kEuler, 1e-2);
  const double e2 = DecayError(Integrator::kEuler, 5e-3);
  EXPECT_NEAR(e1 / e2, 2.0, 0.1);
}

TEST(IntegratorTest, HeunIsSecondOrder)
{
  const double e1 = DecayError(Integrator::kHeun, 1e-2);
  const double e2 = DecayError(Integrator::kHeun, 5e-3);
  EXPECT_NEAR(e1 / e2, 4.0, 0.3);
  // And it is much more accurate than Euler at the same dt.
  EXPECT_LT(e1, DecayError(Integrator::kEuler, 1e-2) / 50.0);
}

TEST(IntegratorTest, HeunMatchesEulerAsDtShrinks)
{
  // Both converge to exp(-1); their mutual distance shrinks with dt.
  const double d1 = std::abs(DecayError(Integrator::kEuler, 1e-2) -
                             DecayError(Integrator::kHeun, 1e-2));
  const double d2 = std::abs(DecayError(Integrator::kEuler, 1e-3) -
                             DecayError(Integrator::kHeun, 1e-3));
  EXPECT_LT(d2, d1);
}

TEST(IntegratorTest, HeunWorksOnMappedNonlinearModel)
{
  // Heun on the FHN reaction-diffusion system stays bounded and close
  // to the Euler solution over a moderate horizon.
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  const auto model = MakeModel("reaction_diffusion", mc);
  NetworkSpec spec = Mapper::Map(model->System());

  MultilayerCenn<double> euler(spec);
  spec.integrator = Integrator::kHeun;
  MultilayerCenn<double> heun(spec);
  euler.Run(200);
  heun.Run(200);
  double max_diff = 0.0;
  const auto a = euler.StateDoubles(0);
  const auto b = heun.StateDoubles(0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(std::abs(b[i]), 3.0);
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  EXPECT_LT(max_diff, 0.2);
  EXPECT_GT(max_diff, 0.0);  // they are genuinely different schemes
}

TEST(IntegratorTest, HeunOnFixedPointDatapath)
{
  // The fixed-point engine supports Heun too (software validation mode).
  NetworkSpec spec;
  spec.rows = 2;
  spec.cols = 2;
  spec.dt = 1e-2;
  spec.integrator = Integrator::kHeun;
  LayerSpec layer;
  layer.initial_state = {1.0, 1.0, 1.0, 1.0};
  spec.layers.push_back(layer);
  MultilayerCenn<Fixed32> net(spec);
  net.Run(100);
  EXPECT_NEAR(net.StateDoubles(0)[0], std::exp(-1.0), 1e-3);
}

TEST(IntegratorTest, ResetsApplyAfterHeunStep)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 1;
  spec.dt = 0.5;
  spec.integrator = Integrator::kHeun;
  LayerSpec layer;
  layer.has_self_decay = false;
  layer.z = 10.0;
  spec.layers.push_back(layer);
  ResetRule rule;
  rule.trigger_layer = 0;
  rule.threshold = 3.0;
  rule.actions.push_back({0, true, -1.0});
  spec.resets.push_back(rule);

  MultilayerCenn<double> net(spec);
  net.Step();  // x would reach 5.0; the reset clamps to -1
  EXPECT_DOUBLE_EQ(net.StateDoubles(0)[0], -1.0);
}

TEST(IntegratorTest, NameStrings)
{
  EXPECT_STREQ(IntegratorName(Integrator::kEuler), "euler");
  EXPECT_STREQ(IntegratorName(Integrator::kHeun), "heun");
}

}  // namespace
}  // namespace cenn
