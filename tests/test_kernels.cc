/**
 * @file
 * SoA kernel engine tests: the bit-exactness contract of SoaEngine
 * against the functional reference (every bundled model, double and
 * fixed precision, serial and band-sharded), scalar-vs-blocked kernel
 * path agreement, checkpoint round-trips through the SoA layout, and
 * a seeded differential fuzz sweep pitting the scalar, blocked and
 * simd kernel paths against each other across models, grid shapes
 * (odd and tiny widths included), boundary kinds, precisions,
 * evaluators and shard counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/solver.h"
#include "kernels/soa_engine.h"
#include "lut/lut_bank.h"
#include "lut/lut_evaluator.h"
#include "lut/lut_store.h"
#include "lut/lut_traffic.h"
#include "models/benchmark_model.h"
#include "kernels/kernel_path.h"
#include "program/checkpoint.h"
#include "runtime/sharded_stepper.h"
#include "runtime/worker_team.h"

namespace cenn {
namespace {

SolverProgram
ModelProgram(const std::string& name, std::size_t rows, std::size_t cols)
{
  ModelConfig mc;
  mc.rows = rows;
  mc.cols = cols;
  return MakeProgram(*MakeModel(name, mc));
}

SolverOptions
LutFixedOptions(const SolverProgram& program)
{
  SolverOptions options;
  options.precision = Precision::kFixed32;
  auto bank =
      LutStore::Global().Acquire(program.spec, program.lut_config);
  options.fixed_evaluator = std::make_shared<LutEvaluatorFixed>(bank);
  return options;
}

/** Asserts every layer of two engines is bit-identical (as f64). */
void
ExpectSameState(const Engine& a, const Engine& b, const std::string& context)
{
  ASSERT_EQ(a.Spec().NumLayers(), b.Spec().NumLayers()) << context;
  for (int l = 0; l < a.Spec().NumLayers(); ++l) {
    const std::vector<double> va = a.Snapshot(l);
    const std::vector<double> vb = b.Snapshot(l);
    ASSERT_EQ(va.size(), vb.size()) << context;
    for (std::size_t i = 0; i < va.size(); ++i) {
      ASSERT_EQ(va[i], vb[i])
          << context << ": layer " << l << " cell " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Bit-exactness sweep: every model x {double, fixed+LUT} x shard counts

TEST(SoaEngineSweepTest, BitExactVsFunctionalAllModelsBothPrecisions)
{
  constexpr std::uint64_t kSteps = 8;
  for (const std::string& name : AllModelNames()) {
    const SolverProgram program = ModelProgram(name, 16, 16);
    if (program.spec.integrator != Integrator::kEuler) {
      continue;  // the SoA engine is explicit-Euler only
    }
    for (const char* precision : {"double", "fixed"}) {
      SolverOptions options;
      if (std::string(precision) == "double") {
        options.precision = Precision::kDouble;
      } else {
        options = LutFixedOptions(program);
      }
      const auto reference = MakeFunctionalEngine(program.spec, options);
      const auto soa = MakeSoaEngine(program.spec, options);
      reference->Run(kSteps);
      soa->Run(kSteps);
      ExpectSameState(*reference, *soa,
                      name + "/" + precision + "/serial");
    }
  }
}

TEST(SoaEngineSweepTest, ShardedBitExactVsFunctionalAllModels)
{
  constexpr std::uint64_t kSteps = 8;
  for (const std::string& name : AllModelNames()) {
    const SolverProgram program = ModelProgram(name, 16, 16);
    if (program.spec.integrator != Integrator::kEuler) {
      continue;
    }
    const SolverOptions options = LutFixedOptions(program);
    const auto reference = MakeFunctionalEngine(program.spec, options);
    reference->Run(kSteps);
    for (int shards : {1, 3, 7}) {
      const auto soa = MakeSoaEngine(program.spec, options);
      RunSharded(soa.get(), kSteps, shards);
      ExpectSameState(*reference, *soa,
                      name + "/fixed/shards=" + std::to_string(shards));
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel paths

TEST(SoaEngineTest, ScalarAndBlockedPathsAgreeEveryPrecision)
{
  constexpr std::uint64_t kSteps = 12;
  const SolverProgram program = ModelProgram("reaction_diffusion", 16, 16);

  for (const char* precision : {"double", "fixed"}) {
    SolverOptions options;
    if (std::string(precision) == "double") {
      options.precision = Precision::kDouble;
    } else {
      options = LutFixedOptions(program);
    }
    const auto scalar =
        MakeSoaEngine(program.spec, options, KernelPath::kScalar);
    const auto blocked =
        MakeSoaEngine(program.spec, options, KernelPath::kBlocked);
    scalar->Run(kSteps);
    blocked->Run(kSteps);
    ExpectSameState(*scalar, *blocked,
                    std::string("scalar-vs-blocked/") + precision);
  }

  // Float has no functional reference; the two paths cross-check it.
  const auto fscalar =
      MakeSoaEngineFloat(program.spec, nullptr, KernelPath::kScalar);
  const auto fblocked =
      MakeSoaEngineFloat(program.spec, nullptr, KernelPath::kBlocked);
  fscalar->Run(kSteps);
  fblocked->Run(kSteps);
  ExpectSameState(*fscalar, *fblocked, "scalar-vs-blocked/float");
}

TEST(SoaEngineTest, ReportsKindAndBands)
{
  const SolverProgram program = ModelProgram("heat", 8, 8);
  const auto soa = MakeSoaEngine(program.spec);
  EXPECT_STREQ(soa->Kind(), "soa");
  EXPECT_TRUE(soa->SupportsBands());
}

TEST(SoaEngineDeathTest, HeunSpecIsFatal)
{
  SolverProgram program = ModelProgram("heat", 8, 8);
  program.spec.integrator = Integrator::kHeun;
  EXPECT_DEATH(MakeSoaEngine(program.spec), "explicit-Euler");
}

// ---------------------------------------------------------------------------
// Checkpoints through the SoA layout

TEST(SoaEngineTest, CheckpointRoundTripIsBitExact)
{
  const SolverProgram program = ModelProgram("gray_scott", 16, 16);
  const SolverOptions options = LutFixedOptions(program);

  const auto uninterrupted = MakeSoaEngine(program.spec, options);
  uninterrupted->Run(30);

  const auto first = MakeSoaEngine(program.spec, options);
  first->Run(12);
  const Checkpoint cp = CaptureCheckpoint(*first);
  EXPECT_EQ(cp.steps, 12u);

  const auto resumed = MakeSoaEngine(program.spec, options);
  RestoreCheckpoint(cp, resumed.get());
  EXPECT_EQ(resumed->Steps(), 12u);
  resumed->Run(18);
  ExpectSameState(*uninterrupted, *resumed, "soa-resume");
}

TEST(SoaEngineTest, CheckpointCrossesEngineKinds)
{
  // A checkpoint captured on the SoA engine restores into the
  // functional engine (and vice versa) with bit-identical evolution.
  const SolverProgram program = ModelProgram("izhikevich", 16, 16);
  const SolverOptions options = LutFixedOptions(program);

  const auto soa = MakeSoaEngine(program.spec, options);
  soa->Run(10);
  const Checkpoint cp = CaptureCheckpoint(*soa);

  const auto functional = MakeFunctionalEngine(program.spec, options);
  RestoreCheckpoint(cp, functional.get());
  soa->Run(10);
  functional->Run(10);
  ExpectSameState(*functional, *soa, "cross-engine-resume");
}

// ---------------------------------------------------------------------------
// Differential fuzz sweep: scalar vs blocked vs simd kernel paths

/** Maps double bits onto a monotone signed line (ULP arithmetic). */
std::int64_t
OrderedBits64(double x)
{
  std::int64_t bits;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return bits < 0
             ? static_cast<std::int64_t>(0x8000000000000000ull) - bits
             : bits;
}

/** float flavor, widened so the subtraction below cannot overflow. */
std::int64_t
OrderedBits32(float x)
{
  std::int32_t bits;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  const auto wide = static_cast<std::int64_t>(bits);
  return bits < 0 ? INT64_C(0x80000000) - wide : wide;
}

/** ULP distance in the engine's native precision; huge on NaN. */
std::int64_t
UlpDiff(double a, double b, bool as_float)
{
  if (std::isnan(a) || std::isnan(b)) {
    return std::isnan(a) && std::isnan(b)
               ? 0
               : std::numeric_limits<std::int64_t>::max();
  }
  const std::int64_t oa = as_float
                              ? OrderedBits32(static_cast<float>(a))
                              : OrderedBits64(a);
  const std::int64_t ob = as_float
                              ? OrderedBits32(static_cast<float>(b))
                              : OrderedBits64(b);
  return oa < ob ? ob - oa : oa - ob;
}

/** Asserts every cell of two engines is within max_ulp (native ULPs). */
void
ExpectUlpClose(const Engine& a, const Engine& b, bool as_float,
               std::int64_t max_ulp, const std::string& context)
{
  ASSERT_EQ(a.Spec().NumLayers(), b.Spec().NumLayers()) << context;
  for (int l = 0; l < a.Spec().NumLayers(); ++l) {
    const std::vector<double> va = a.Snapshot(l);
    const std::vector<double> vb = b.Snapshot(l);
    ASSERT_EQ(va.size(), vb.size()) << context;
    for (std::size_t i = 0; i < va.size(); ++i) {
      ASSERT_LE(UlpDiff(va[i], vb[i], as_float), max_ulp)
          << context << ": layer " << l << " cell " << i << " ("
          << va[i] << " vs " << vb[i] << ")";
    }
  }
}

SolverProgram
FuzzProgram(const std::string& name, std::size_t rows, std::size_t cols,
            std::uint64_t ic_seed)
{
  ModelConfig mc;
  mc.rows = rows;
  mc.cols = cols;
  mc.seed = ic_seed;
  return MakeProgram(*MakeModel(name, mc));
}

/**
 * The simd exactness contract, fuzzed: >= 100 seeded random configs
 * (model x grid shape x boundary kind x precision x evaluator x shard
 * count x step count), each stepped on the scalar, blocked and simd
 * kernel paths. blocked must match scalar bit-for-bit (the existing
 * contract); simd must match within 4 native ULPs for float/double
 * (docs/kernels.md) and bit-for-bit for Fixed32 (the simd path falls
 * back to the blocked integer kernels). Every assertion carries the
 * master seed and the config index, so a failure reproduces by
 * pinning kMasterSeed and stepping to that config.
 */
TEST(SimdFuzzTest, DifferentialSweepScalarBlockedSimd)
{
  constexpr std::uint64_t kMasterSeed = 0xCE11FA57u;
  constexpr int kConfigs = 120;
  constexpr std::int64_t kMaxUlp = 4;
  const std::size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 31, 33};
  const int kShards[] = {1, 2, 3, 5};
  const char* kPrecisions[] = {"double", "float", "fixed"};

  std::vector<std::string> models;
  for (const std::string& name : AllModelNames()) {
    if (FuzzProgram(name, 8, 8, 1).spec.integrator == Integrator::kEuler) {
      models.push_back(name);
    }
  }
  ASSERT_FALSE(models.empty());

  std::mt19937_64 rng(kMasterSeed);
  for (int cfg = 0; cfg < kConfigs; ++cfg) {
    const std::string model = models[rng() % models.size()];
    // poisson's initial-condition sprinkler needs a 5x5 interior.
    const std::size_t min_size = model == "poisson" ? 5 : 1;
    const std::size_t rows =
        std::max(min_size, kSizes[rng() % std::size(kSizes)]);
    const std::size_t cols =
        std::max(min_size, kSizes[rng() % std::size(kSizes)]);
    const auto bkind = static_cast<BoundaryKind>(rng() % 3);
    // Round-robin precision: every third config per flavor, instead of
    // leaving coverage of the rarest flavor to chance.
    const std::string precision = kPrecisions[cfg % 3];
    const int shards = kShards[rng() % std::size(kShards)];
    const bool use_lut = (rng() & 1) != 0 && precision != "float";
    const std::uint64_t steps = 2 + rng() % 5;
    const std::uint64_t ic_seed = rng();

    SolverProgram program = FuzzProgram(model, rows, cols, ic_seed);
    program.spec.boundary.kind = bkind;
    if (bkind == BoundaryKind::kDirichlet) {
      program.spec.boundary.value = 0.25;
    }

    std::ostringstream desc;
    desc << "master-seed=0x" << std::hex << kMasterSeed << std::dec
         << " config#" << cfg << ": " << model << " " << rows << "x"
         << cols << " boundary=" << static_cast<int>(bkind)
         << " precision=" << precision << " shards=" << shards
         << (use_lut ? " lut" : " direct") << " steps=" << steps;
    SCOPED_TRACE(desc.str());

    if (precision == "float") {
      // No float LUT evaluator exists; direct math only.
      const auto scalar =
          MakeSoaEngineFloat(program.spec, nullptr, KernelPath::kScalar);
      const auto blocked =
          MakeSoaEngineFloat(program.spec, nullptr, KernelPath::kBlocked);
      const auto simd =
          MakeSoaEngineFloat(program.spec, nullptr, KernelPath::kSimd);
      scalar->Run(steps);
      RunSharded(blocked.get(), steps, shards);
      RunSharded(simd.get(), steps, shards);
      ExpectSameState(*scalar, *blocked, desc.str() + " [blocked]");
      ExpectUlpClose(*scalar, *simd, /*as_float=*/true, kMaxUlp,
                     desc.str() + " [simd]");
      continue;
    }

    SolverOptions options;
    if (precision == "double") {
      options.precision = Precision::kDouble;
      if (use_lut) {
        auto bank = LutStore::Global().Acquire(program.spec,
                                                    program.lut_config);
        options.double_evaluator =
            std::make_shared<LutEvaluatorDouble>(bank);
      }
    } else {
      options.precision = Precision::kFixed32;
      if (use_lut) {
        options = LutFixedOptions(program);
      }
    }
    const auto scalar =
        MakeSoaEngine(program.spec, options, KernelPath::kScalar);
    const auto blocked =
        MakeSoaEngine(program.spec, options, KernelPath::kBlocked);
    const auto simd =
        MakeSoaEngine(program.spec, options, KernelPath::kSimd);
    scalar->Run(steps);
    RunSharded(blocked.get(), steps, shards);
    RunSharded(simd.get(), steps, shards);
    ExpectSameState(*scalar, *blocked, desc.str() + " [blocked]");
    if (precision == "fixed") {
      // Fixed32 simd is the blocked fallback: bit-exact, no ULP slack.
      ExpectSameState(*scalar, *simd, desc.str() + " [simd]");
    } else {
      ExpectUlpClose(*scalar, *simd, /*as_float=*/false, kMaxUlp,
                     desc.str() + " [simd]");
    }
  }
}

// ---------------------------------------------------------------------------
// LUT traffic accounting: identical counts on every kernel path

/** Runs one engine with LUT accounting attached; returns the tally. */
LutTally
CountLutTraffic(Engine* engine, std::uint64_t steps, int shards)
{
  LutTrafficSink sink;
  engine->AttachLutTraffic(&sink);
  if (shards > 1) {
    // Band workers install their own scoped tallies.
    RunSharded(engine, steps, shards);
  } else {
    ScopedLutTally tally(engine->AttachedLutTraffic());
    engine->Run(steps);
  }
  LutTally total;
  total.accesses = sink.Accesses();
  total.exact_hits = sink.ExactHits();
  return total;
}

TEST(SoaEngineTest, LutTrafficCountsIdenticalAcrossKernelPaths)
{
  // Double + LUT exercises the simd gathered-LUT kernels (fixed simd
  // falls back to blocked); sharding exercises the worker-side scoped
  // tallies. Every configuration must see exactly the same LUT
  // evaluation stream — the accounting is defined by the model, not
  // by the kernel organization.
  const SolverProgram program = ModelProgram("reaction_diffusion", 16, 16);
  constexpr std::uint64_t kSteps = 10;
  auto bank =
      LutStore::Global().Acquire(program.spec, program.lut_config);

  LutTally reference;
  bool have_reference = false;
  for (const KernelPath path :
       {KernelPath::kScalar, KernelPath::kBlocked, KernelPath::kSimd}) {
    for (const int shards : {1, 2}) {
      SolverOptions options;
      options.precision = Precision::kDouble;
      options.double_evaluator =
          std::make_shared<LutEvaluatorDouble>(bank);
      const auto engine = MakeSoaEngine(program.spec, options, path);
      const LutTally tally = CountLutTraffic(engine.get(), kSteps, shards);
      ASSERT_GT(tally.accesses, 0u);
      if (!have_reference) {
        reference = tally;
        have_reference = true;
        continue;
      }
      EXPECT_EQ(tally.accesses, reference.accesses)
          << "path " << static_cast<int>(path) << " x" << shards;
      EXPECT_EQ(tally.exact_hits, reference.exact_hits)
          << "path " << static_cast<int>(path) << " x" << shards;
    }
  }

  // The fixed datapath (scalar vs blocked-fallback simd) agrees too.
  const SolverOptions fixed_options = LutFixedOptions(program);
  const auto fixed_scalar =
      MakeSoaEngine(program.spec, fixed_options, KernelPath::kScalar);
  const auto fixed_simd =
      MakeSoaEngine(program.spec, fixed_options, KernelPath::kSimd);
  const LutTally a = CountLutTraffic(fixed_scalar.get(), kSteps, 1);
  const LutTally b = CountLutTraffic(fixed_simd.get(), kSteps, 2);
  ASSERT_GT(a.accesses, 0u);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.exact_hits, b.exact_hits);
}

TEST(SoaEngineTest, DetachedLutTrafficCostsNothingAndCountsNothing)
{
  const SolverProgram program = ModelProgram("reaction_diffusion", 16, 16);
  SolverOptions options = LutFixedOptions(program);
  const auto engine = MakeSoaEngine(program.spec, options);
  // No sink attached: AttachedLutTraffic is null and the scoped tally
  // is a no-op, so running leaves the thread-local slot untouched.
  {
    ScopedLutTally tally(engine->AttachedLutTraffic());
    engine->Run(4);
  }
  EXPECT_EQ(lut_traffic::t_tally, nullptr);
}

// ---------------------------------------------------------------------------
// Fused persistent-team stepping (runtime/worker_team.h)

/** ULP distance between two doubles (same-sign finite values). */
std::uint64_t
UlpDistance(double a, double b)
{
  if (a == b) {
    return 0;
  }
  std::int64_t ia = 0;
  std::int64_t ib = 0;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  // Map to a lexicographically ordered integer line.
  const auto order = [](std::int64_t v) {
    return v < 0 ? std::numeric_limits<std::int64_t>::min() - v : v;
  };
  ia = order(ia);
  ib = order(ib);
  return static_cast<std::uint64_t>(ia > ib ? ia - ib : ib - ia);
}

/** Asserts two engines agree within `max_ulp` on every cell. */
void
ExpectStateWithinUlp(const Engine& a, const Engine& b,
                     std::uint64_t max_ulp, const std::string& context)
{
  ASSERT_EQ(a.Spec().NumLayers(), b.Spec().NumLayers()) << context;
  for (int l = 0; l < a.Spec().NumLayers(); ++l) {
    const std::vector<double> va = a.Snapshot(l);
    const std::vector<double> vb = b.Snapshot(l);
    ASSERT_EQ(va.size(), vb.size()) << context;
    for (std::size_t i = 0; i < va.size(); ++i) {
      ASSERT_LE(UlpDistance(va[i], vb[i]), max_ulp)
          << context << ": layer " << l << " cell " << i << " serial="
          << va[i] << " fused=" << vb[i];
    }
  }
}

/**
 * The tentpole exactness contract: a persistent ShardTeam — dispatched
 * twice to exercise worker reuse — and a one-shot RunSharded both
 * reproduce serial stepping bit-for-bit, for every bundled Euler
 * model, both precisions, every kernel path and ragged shard counts.
 */
TEST(FusedTeamSweepTest, PersistentTeamBitExactAllModelsPathsShards)
{
  constexpr std::uint64_t kSteps = 8;
  for (const std::string& name : AllModelNames()) {
    const SolverProgram program = ModelProgram(name, 16, 16);
    if (program.spec.integrator != Integrator::kEuler) {
      continue;  // band stepping is explicit-Euler only
    }
    for (const char* precision : {"double", "fixed"}) {
      SolverOptions options;
      if (std::string(precision) == "double") {
        options.precision = Precision::kDouble;
      } else {
        options = LutFixedOptions(program);
      }
      for (const KernelPath path :
           {KernelPath::kScalar, KernelPath::kBlocked, KernelPath::kSimd}) {
        const auto serial = MakeSoaEngine(program.spec, options, path);
        serial->Run(kSteps);
        for (int shards : {1, 3, 7}) {
          const std::string context =
              name + "/" + precision + "/" + KernelPathName(path) +
              "/shards=" + std::to_string(shards);

          // Persistent team, two dispatches (worker reuse).
          const auto fused = MakeSoaEngine(program.spec, options, path);
          {
            TeamOptions to;
            to.shards = shards;
            ShardTeam team(fused.get(), to);
            team.Run(kSteps / 2);
            team.Run(kSteps - kSteps / 2);
            EXPECT_EQ(team.Dispatches(), 2u) << context;
          }
          ExpectSameState(*serial, *fused, context + "/persistent");

          // One-shot wrapper takes the identical code path.
          const auto oneshot = MakeSoaEngine(program.spec, options, path);
          RunSharded(oneshot.get(), kSteps, shards);
          ExpectSameState(*serial, *oneshot, context + "/oneshot");
        }
      }
    }
  }
}

/**
 * Temporal blocking (block_steps = T > 1) steps private band clones T
 * Euler steps per halo exchange. For the non-FMA scalar/blocked paths
 * the published state is bit-exact vs serial; the SIMD path keeps the
 * documented <= 4 ULP contract. Step counts that do not divide T
 * exercise the short tail block.
 */
TEST(TemporalBlockingTest, MatchesSerialWithinKernelPathContract)
{
  constexpr std::uint64_t kSteps = 10;  // 3 blocks of T=4: 4+4+2
  for (const std::string& name : {std::string("heat"),
                                  std::string("reaction_diffusion")}) {
    const SolverProgram program = ModelProgram(name, 24, 16);
    if (program.spec.integrator != Integrator::kEuler) {
      continue;
    }
    SolverOptions options;
    options.precision = Precision::kDouble;
    for (const KernelPath path :
         {KernelPath::kScalar, KernelPath::kBlocked, KernelPath::kSimd}) {
      const auto serial = MakeSoaEngine(program.spec, options, path);
      serial->Run(kSteps);

      const auto fused = MakeSoaEngine(program.spec, options, path);
      TeamOptions to;
      to.shards = 3;
      to.block_steps = 4;
      ShardTeam team(fused.get(), to);
      ASSERT_TRUE(team.TemporalBlocking())
          << name << "/" << KernelPathName(path);
      team.Run(kSteps);

      const std::string context = name + "/temporal/" +
                                  KernelPathName(path);
      if (path == KernelPath::kSimd) {
        ExpectStateWithinUlp(*serial, *fused, 4, context);
      } else {
        ExpectSameState(*serial, *fused, context);
      }
    }
  }
}

/**
 * Fixed32 has no band clones, so block_steps > 1 must fall back to
 * classic two-phase stepping (still bit-exact) instead of corrupting
 * state or crashing.
 */
TEST(TemporalBlockingTest, Fixed32FallsBackToClassicStepping)
{
  constexpr std::uint64_t kSteps = 8;
  const SolverProgram program = ModelProgram("heat", 16, 16);
  const SolverOptions options = LutFixedOptions(program);

  const auto serial = MakeSoaEngine(program.spec, options);
  serial->Run(kSteps);

  const auto fused = MakeSoaEngine(program.spec, options);
  TeamOptions to;
  to.shards = 3;
  to.block_steps = 4;
  ShardTeam team(fused.get(), to);
  EXPECT_FALSE(team.TemporalBlocking());
  team.Run(kSteps);
  ExpectSameState(*serial, *fused, "fixed/temporal-fallback");
}

}  // namespace
}  // namespace cenn
