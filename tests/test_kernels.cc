/**
 * @file
 * SoA kernel engine tests: the bit-exactness contract of SoaEngine
 * against the functional reference (every bundled model, double and
 * fixed precision, serial and band-sharded), scalar-vs-blocked kernel
 * path agreement, and checkpoint round-trips through the SoA layout.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/solver.h"
#include "kernels/soa_engine.h"
#include "lut/lut_bank.h"
#include "lut/lut_evaluator.h"
#include "models/benchmark_model.h"
#include "program/checkpoint.h"
#include "runtime/sharded_stepper.h"

namespace cenn {
namespace {

SolverProgram
ModelProgram(const std::string& name, std::size_t rows, std::size_t cols)
{
  ModelConfig mc;
  mc.rows = rows;
  mc.cols = cols;
  return MakeProgram(*MakeModel(name, mc));
}

SolverOptions
LutFixedOptions(const SolverProgram& program)
{
  SolverOptions options;
  options.precision = Precision::kFixed32;
  auto bank =
      std::make_shared<const LutBank>(program.spec, program.lut_config);
  options.fixed_evaluator = std::make_shared<LutEvaluatorFixed>(bank);
  return options;
}

/** Asserts every layer of two engines is bit-identical (as f64). */
void
ExpectSameState(const Engine& a, const Engine& b, const std::string& context)
{
  ASSERT_EQ(a.Spec().NumLayers(), b.Spec().NumLayers()) << context;
  for (int l = 0; l < a.Spec().NumLayers(); ++l) {
    const std::vector<double> va = a.Snapshot(l);
    const std::vector<double> vb = b.Snapshot(l);
    ASSERT_EQ(va.size(), vb.size()) << context;
    for (std::size_t i = 0; i < va.size(); ++i) {
      ASSERT_EQ(va[i], vb[i])
          << context << ": layer " << l << " cell " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Bit-exactness sweep: every model x {double, fixed+LUT} x shard counts

TEST(SoaEngineSweepTest, BitExactVsFunctionalAllModelsBothPrecisions)
{
  constexpr std::uint64_t kSteps = 8;
  for (const std::string& name : AllModelNames()) {
    const SolverProgram program = ModelProgram(name, 16, 16);
    if (program.spec.integrator != Integrator::kEuler) {
      continue;  // the SoA engine is explicit-Euler only
    }
    for (const char* precision : {"double", "fixed"}) {
      SolverOptions options;
      if (std::string(precision) == "double") {
        options.precision = Precision::kDouble;
      } else {
        options = LutFixedOptions(program);
      }
      const auto reference = MakeFunctionalEngine(program.spec, options);
      const auto soa = MakeSoaEngine(program.spec, options);
      reference->Run(kSteps);
      soa->Run(kSteps);
      ExpectSameState(*reference, *soa,
                      name + "/" + precision + "/serial");
    }
  }
}

TEST(SoaEngineSweepTest, ShardedBitExactVsFunctionalAllModels)
{
  constexpr std::uint64_t kSteps = 8;
  for (const std::string& name : AllModelNames()) {
    const SolverProgram program = ModelProgram(name, 16, 16);
    if (program.spec.integrator != Integrator::kEuler) {
      continue;
    }
    const SolverOptions options = LutFixedOptions(program);
    const auto reference = MakeFunctionalEngine(program.spec, options);
    reference->Run(kSteps);
    for (int shards : {1, 3, 7}) {
      const auto soa = MakeSoaEngine(program.spec, options);
      RunSharded(soa.get(), kSteps, shards);
      ExpectSameState(*reference, *soa,
                      name + "/fixed/shards=" + std::to_string(shards));
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel paths

TEST(SoaEngineTest, ScalarAndBlockedPathsAgreeEveryPrecision)
{
  constexpr std::uint64_t kSteps = 12;
  const SolverProgram program = ModelProgram("reaction_diffusion", 16, 16);

  for (const char* precision : {"double", "fixed"}) {
    SolverOptions options;
    if (std::string(precision) == "double") {
      options.precision = Precision::kDouble;
    } else {
      options = LutFixedOptions(program);
    }
    const auto scalar =
        MakeSoaEngine(program.spec, options, KernelPath::kScalar);
    const auto blocked =
        MakeSoaEngine(program.spec, options, KernelPath::kBlocked);
    scalar->Run(kSteps);
    blocked->Run(kSteps);
    ExpectSameState(*scalar, *blocked,
                    std::string("scalar-vs-blocked/") + precision);
  }

  // Float has no functional reference; the two paths cross-check it.
  const auto fscalar =
      MakeSoaEngineFloat(program.spec, nullptr, KernelPath::kScalar);
  const auto fblocked =
      MakeSoaEngineFloat(program.spec, nullptr, KernelPath::kBlocked);
  fscalar->Run(kSteps);
  fblocked->Run(kSteps);
  ExpectSameState(*fscalar, *fblocked, "scalar-vs-blocked/float");
}

TEST(SoaEngineTest, ReportsKindAndBands)
{
  const SolverProgram program = ModelProgram("heat", 8, 8);
  const auto soa = MakeSoaEngine(program.spec);
  EXPECT_STREQ(soa->Kind(), "soa");
  EXPECT_TRUE(soa->SupportsBands());
}

TEST(SoaEngineDeathTest, HeunSpecIsFatal)
{
  SolverProgram program = ModelProgram("heat", 8, 8);
  program.spec.integrator = Integrator::kHeun;
  EXPECT_DEATH(MakeSoaEngine(program.spec), "explicit-Euler");
}

// ---------------------------------------------------------------------------
// Checkpoints through the SoA layout

TEST(SoaEngineTest, CheckpointRoundTripIsBitExact)
{
  const SolverProgram program = ModelProgram("gray_scott", 16, 16);
  const SolverOptions options = LutFixedOptions(program);

  const auto uninterrupted = MakeSoaEngine(program.spec, options);
  uninterrupted->Run(30);

  const auto first = MakeSoaEngine(program.spec, options);
  first->Run(12);
  const Checkpoint cp = CaptureCheckpoint(*first);
  EXPECT_EQ(cp.steps, 12u);

  const auto resumed = MakeSoaEngine(program.spec, options);
  RestoreCheckpoint(cp, resumed.get());
  EXPECT_EQ(resumed->Steps(), 12u);
  resumed->Run(18);
  ExpectSameState(*uninterrupted, *resumed, "soa-resume");
}

TEST(SoaEngineTest, CheckpointCrossesEngineKinds)
{
  // A checkpoint captured on the SoA engine restores into the
  // functional engine (and vice versa) with bit-identical evolution.
  const SolverProgram program = ModelProgram("izhikevich", 16, 16);
  const SolverOptions options = LutFixedOptions(program);

  const auto soa = MakeSoaEngine(program.spec, options);
  soa->Run(10);
  const Checkpoint cp = CaptureCheckpoint(*soa);

  const auto functional = MakeFunctionalEngine(program.spec, options);
  RestoreCheckpoint(cp, functional.get());
  soa->Run(10);
  functional->Run(10);
  ExpectSameState(*functional, *soa, "cross-engine-resume");
}

}  // namespace
}  // namespace cenn
