/**
 * @file
 * Scenario DSL tests: the differential model-equivalence harness
 * (every zoo twin must be indistinguishable from its hand-coded C++
 * model, down to the bit), parser robustness fuzzing, golden
 * round-trip / spec-dump pins, and the two text-only scenarios that
 * have no C++ twin at all.
 *
 * Goldens live in tests/golden/lang/. To regenerate after an
 * intentional spec change:
 *   CENN_UPDATE_GOLDENS=1 ./build/tests/test_lang \
 *       --gtest_filter='GoldenTest.*'
 * then review the diff like any other source change.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lang/compiler.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "lang/spec_dump.h"
#include "models/benchmark_model.h"
#include "runtime/engine_factory.h"
#include "runtime/solver_session.h"

namespace cenn {
namespace {

/** Zoo models that have a hand-coded C++ twin registered in MakeModel. */
const char* const kTwins[] = {
    "heat",       "fisher",     "wave",       "poisson",
    "reaction_diffusion",       "gray_scott", "brusselator",
};

/** Every zoo file, twins plus the two text-only scenarios. */
const char* const kZoo[] = {
    "heat",       "fisher",     "wave",        "poisson",
    "reaction_diffusion",       "gray_scott",  "brusselator",
    "gray_scott_mitosis",       "maxcut_grid",
};

std::string
ZooPath(const std::string& name)
{
  return std::string(CENN_ZOO_DIR) + "/" + name + ".cenn";
}

std::string
GoldenPath(const std::string& name)
{
  return std::string(CENN_GOLDEN_DIR) + "/" + name + ".spec";
}

std::string
ReadFileOrEmpty(const std::string& path)
{
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

lang::CompiledScenario
CompileZoo(const std::string& name, std::size_t rows = 0,
           std::size_t cols = 0, std::uint64_t seed = 42)
{
  lang::ScenarioConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.seed = seed;
  const lang::CompileResult result = lang::CompileFile(ZooPath(name), cfg);
  EXPECT_TRUE(result.ok()) << lang::FormatDiags(ZooPath(name), result.diags);
  return result.scenario;
}

SolverProgram
TwinProgram(const std::string& name, std::size_t rows, std::size_t cols,
            std::uint64_t seed)
{
  ModelConfig mc;
  mc.rows = rows;
  mc.cols = cols;
  mc.seed = seed;
  return MakeProgram(*MakeModel(name, mc));
}

/** Steps `program` for `steps` and fingerprints the final state. */
std::uint64_t
RunChecksum(const SolverProgram& program, const std::string& engine,
            const std::string& precision, int shards, std::uint64_t steps)
{
  EngineRequest req;
  req.engine = engine;
  req.precision = precision;
  SessionConfig cfg;
  cfg.name = "equiv";
  cfg.exec.shards = shards;
  cfg.target_steps = steps;
  cfg.slice_steps = 4;  // several slices even on tiny runs
  SolverSession session(BuildEngine(program, NormalizeEngineRequest(req)),
                        cfg);
  session.RunToTarget();
  return session.StateChecksum();
}

// ---------------------------------------------------------------------------
// Differential model equivalence: text twin vs hand-coded C++

TEST(EquivalenceTest, MappedSpecsAreBitIdenticalToHandCodedTwins)
{
  for (const char* name : kTwins) {
    const lang::CompiledScenario scenario = CompileZoo(name, 16, 16);
    const SolverProgram from_text = lang::MakeScenarioProgram(scenario);
    const SolverProgram from_cpp = TwinProgram(name, 16, 16, 42);
    EXPECT_EQ(lang::DumpSpec(from_text.spec, from_text.lut_config, 0),
              lang::DumpSpec(from_cpp.spec, from_cpp.lut_config, 0))
        << "zoo/" << name << ".cenn maps differently from the C++ model";
  }
}

TEST(EquivalenceTest, ChecksumsMatchAcrossEnginesPrecisionsAndShards)
{
  // The full differential matrix: every twin, every engine family the
  // sharded session supports, both numeric types, serial and banded.
  for (const char* name : kTwins) {
    const SolverProgram from_text =
        lang::MakeScenarioProgram(CompileZoo(name, 16, 16));
    const SolverProgram from_cpp = TwinProgram(name, 16, 16, 42);
    for (const char* engine : {"functional", "soa"}) {
      for (const char* precision : {"double", "fixed"}) {
        for (int shards : {1, 3}) {
          const std::uint64_t text_sum =
              RunChecksum(from_text, engine, precision, shards, 8);
          const std::uint64_t cpp_sum =
              RunChecksum(from_cpp, engine, precision, shards, 8);
          EXPECT_EQ(text_sum, cpp_sum)
              << name << " diverges on " << engine << ":" << precision
              << ":shards=" << shards;
        }
      }
    }
  }
}

TEST(EquivalenceTest, SeedChangesFieldsButTwinsTrackEachOther)
{
  const SolverProgram text_a =
      lang::MakeScenarioProgram(CompileZoo("heat", 16, 16, 7));
  const SolverProgram cpp_a = TwinProgram("heat", 16, 16, 7);
  EXPECT_EQ(lang::DumpSpec(text_a.spec, text_a.lut_config, 0),
            lang::DumpSpec(cpp_a.spec, cpp_a.lut_config, 0));
  const SolverProgram cpp_b = TwinProgram("heat", 16, 16, 8);
  EXPECT_NE(lang::DumpSpec(cpp_a.spec, cpp_a.lut_config, 0),
            lang::DumpSpec(cpp_b.spec, cpp_b.lut_config, 0))
      << "different seeds should produce different initial fields";
}

// ---------------------------------------------------------------------------
// Text-only scenarios (no C++ twin)

TEST(ScenarioOnlyTest, MitosisAndMaxcutCompileAndRunEverywhere)
{
  for (const char* name : {"gray_scott_mitosis", "maxcut_grid"}) {
    const lang::CompiledScenario scenario = CompileZoo(name, 16, 16);
    EXPECT_GT(scenario.default_steps, 0u) << name;
    const SolverProgram program = lang::MakeScenarioProgram(scenario);
    for (const char* engine : {"functional", "soa"}) {
      for (const char* precision : {"double", "fixed"}) {
        const std::uint64_t serial =
            RunChecksum(program, engine, precision, 1, 8);
        const std::uint64_t banded =
            RunChecksum(program, engine, precision, 3, 8);
        EXPECT_EQ(serial, banded)
            << name << " not shard-deterministic on " << engine << ":"
            << precision;
      }
    }
  }
}

TEST(ScenarioOnlyTest, MaxcutConvergesToAnAntiAlignedCut)
{
  // Energy descent on the antiferromagnetic grid: after the scenario's
  // own default step budget the sign pattern should cut the large
  // majority of grid edges (a perfect checkerboard cuts all of them;
  // random signs cut half).
  const lang::CompiledScenario scenario = CompileZoo("maxcut_grid");
  const SolverProgram program = lang::MakeScenarioProgram(scenario);
  EngineRequest req;
  req.engine = "functional";
  req.precision = "double";
  SessionConfig cfg;
  cfg.name = "maxcut";
  cfg.target_steps = scenario.default_steps;
  SolverSession session(BuildEngine(program, NormalizeEngineRequest(req)),
                        cfg);
  session.RunToTarget();

  const std::size_t rows = scenario.system.rows;
  const std::size_t cols = scenario.system.cols;
  const std::vector<double> x = session.StateDoubles(0);
  ASSERT_EQ(x.size(), rows * cols);
  std::size_t edges = 0;
  std::size_t cut = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        ++edges;
        cut += (x[r * cols + c] > 0) != (x[r * cols + c + 1] > 0) ? 1 : 0;
      }
      if (r + 1 < rows) {
        ++edges;
        cut += (x[r * cols + c] > 0) != (x[(r + 1) * cols + c] > 0) ? 1 : 0;
      }
    }
  }
  const double frac =
      static_cast<double>(cut) / static_cast<double>(edges);
  EXPECT_GT(frac, 0.85) << "cut fraction " << frac
                        << " — spins failed to anti-align";
  // Spins actually committed to the wells (not hovering near zero).
  double max_abs = 0.0;
  for (const double v : x) {
    max_abs = std::max(max_abs, std::abs(v));
  }
  EXPECT_GT(max_abs, 0.5);
}

// ---------------------------------------------------------------------------
// Golden round-trip: parse -> pretty-print is a fixed point

TEST(GoldenTest, ZooFilesRoundTripThroughThePrinter)
{
  for (const char* name : kZoo) {
    const std::string source = ReadFileOrEmpty(ZooPath(name));
    ASSERT_FALSE(source.empty()) << ZooPath(name);
    const lang::ParseResult first = lang::Parse(source);
    ASSERT_TRUE(first.ok()) << lang::FormatDiags(name, first.diags);
    const std::string printed = lang::Print(first.def);
    const lang::ParseResult second = lang::Parse(printed);
    ASSERT_TRUE(second.ok())
        << "pretty-printed form of " << name
        << " does not re-parse: " << lang::FormatDiags(name, second.diags);
    EXPECT_EQ(lang::Print(second.def), printed)
        << name << ": print -> parse -> print is not a fixed point";

    // The canonical form must also compile to the identical spec.
    lang::ScenarioConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    const lang::CompileResult a = lang::CompileSource(source, cfg);
    const lang::CompileResult b = lang::CompileSource(printed, cfg);
    ASSERT_TRUE(a.ok() && b.ok()) << name;
    EXPECT_EQ(lang::DumpScenario(a.scenario), lang::DumpScenario(b.scenario))
        << name << ": canonical form compiles differently";
  }
}

TEST(GoldenTest, SpecDumpsMatchCheckedInGoldens)
{
  const bool update = std::getenv("CENN_UPDATE_GOLDENS") != nullptr;
  for (const char* name : kZoo) {
    const lang::CompiledScenario scenario = CompileZoo(name);
    const std::string dump = lang::DumpScenario(scenario);
    const std::string path = GoldenPath(name);
    if (update) {
      std::ofstream out(path);
      out << dump;
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      continue;
    }
    const std::string golden = ReadFileOrEmpty(path);
    ASSERT_FALSE(golden.empty())
        << path << " missing — regenerate with CENN_UPDATE_GOLDENS=1";
    EXPECT_EQ(dump, golden)
        << "zoo/" << name << ".cenn no longer maps to its golden spec; "
        << "if intentional, regenerate with CENN_UPDATE_GOLDENS=1";
  }
}

// ---------------------------------------------------------------------------
// Parser robustness: hostile input never crashes, always positions

/** xorshift64* — deterministic fuzz stream, no libc rand. */
class FuzzRng
{
  public:
    explicit FuzzRng(std::uint64_t seed) : state_(seed | 1) {}

    std::uint64_t Next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 2685821657736338717ULL;
    }

    std::uint32_t Below(std::uint32_t n)
    {
        return static_cast<std::uint32_t>(Next() % n);
    }

  private:
    std::uint64_t state_;
};

/** Compiles hostile text; the only requirement is a sane outcome. */
void
ExpectTotal(const std::string& source)
{
  lang::ScenarioConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  const lang::CompileResult result = lang::CompileSource(source, cfg);
  if (result.ok()) {
    return;  // fuzzers do occasionally emit valid scenarios
  }
  ASSERT_FALSE(result.diags.empty());
  for (const lang::Diag& d : result.diags) {
    EXPECT_GE(d.pos.line, 1);
    EXPECT_GE(d.pos.col, 1);
    EXPECT_FALSE(d.message.empty());
    // Formatting must never throw or produce an empty string either.
    EXPECT_NE(lang::FormatDiag("fuzz", d).find("fuzz:"), std::string::npos);
  }
}

TEST(FuzzTest, ByteSoupNeverCrashesTheFrontend)
{
  FuzzRng rng(0x5eed5eed5eedULL);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 \t\n=+-*/^(),._#;\"\\{}[]<>!@$%&";
  for (int i = 0; i < 300; ++i) {
    std::string source;
    const std::uint32_t len = rng.Below(512);
    source.reserve(len);
    for (std::uint32_t j = 0; j < len; ++j) {
      if (rng.Below(16) == 0) {
        source.push_back(static_cast<char>(rng.Below(256)));  // raw bytes
      } else {
        source.push_back(alphabet[rng.Below(
            static_cast<std::uint32_t>(alphabet.size()))]);
      }
    }
    SCOPED_TRACE("byte-soup case " + std::to_string(i));
    ExpectTotal(source);
  }
}

TEST(FuzzTest, MutatedZooSourcesNeverCrashTheFrontend)
{
  // Grammar-aware fuzzing: start from real scenarios and damage them —
  // truncations, duplicated lines, token deletions, character flips.
  std::vector<std::string> corpus;
  for (const char* name : kZoo) {
    corpus.push_back(ReadFileOrEmpty(ZooPath(name)));
    ASSERT_FALSE(corpus.back().empty()) << name;
  }
  FuzzRng rng(0xfeedbeefULL);
  const std::string junk = "=+-*/^(),;#\n ";
  for (int i = 0; i < 300; ++i) {
    std::string source = corpus[rng.Below(
        static_cast<std::uint32_t>(corpus.size()))];
    const int mutations = 1 + static_cast<int>(rng.Below(8));
    for (int m = 0; m < mutations && !source.empty(); ++m) {
      const std::uint32_t at = rng.Below(
          static_cast<std::uint32_t>(source.size()));
      switch (rng.Below(5)) {
        case 0:  // flip a character
          source[at] = static_cast<char>(rng.Below(256));
          break;
        case 1:  // truncate
          source.resize(at);
          break;
        case 2:  // delete a span
          source.erase(at, rng.Below(16));
          break;
        case 3:  // insert junk
          source.insert(at, 1, junk[rng.Below(
              static_cast<std::uint32_t>(junk.size()))]);
          break;
        default: {  // duplicate a line somewhere else
          const std::size_t begin = source.rfind('\n', at);
          const std::size_t start = begin == std::string::npos ? 0 : begin + 1;
          const std::size_t end = source.find('\n', at);
          const std::string line =
              source.substr(start, end == std::string::npos
                                       ? std::string::npos
                                       : end - start);
          source.insert(rng.Below(static_cast<std::uint32_t>(
                            source.size() + 1)), line + "\n");
          break;
        }
      }
    }
    SCOPED_TRACE("mutation case " + std::to_string(i));
    ExpectTotal(source);
  }
}

TEST(FuzzTest, PathologicalShapesAreRejectedNotFatal)
{
  // Deep nesting, huge exponents, absurd grids, runaway statement
  // counts: each must come back as a diagnostic, not a crash or OOM.
  std::string deep = "scenario d\ndt 0.1\nvar u\nd u/dt = ";
  for (int i = 0; i < 200; ++i) {
    deep += "(";
  }
  deep += "u";
  for (int i = 0; i < 200; ++i) {
    deep += ")";
  }
  ExpectTotal(deep + "\n");

  ExpectTotal("scenario e\ndt 0.1\nvar u\nd u/dt = u^99999999\n");
  ExpectTotal("scenario g\ngrid 99999999999 2\ndt 0.1\nvar u\n"
              "d u/dt = u\n");
  std::string many = "scenario m\ndt 0.1\nvar u\nd u/dt = u\n";
  for (int i = 0; i < 10000; ++i) {
    many += "param p" + std::to_string(i) + " = 1\n";
  }
  ExpectTotal(many);
  ExpectTotal("");  // empty input
  ExpectTotal(std::string(1, '\0'));
  ExpectTotal("d u/dt = 1e999999\n");  // overflowing literal
}

TEST(FuzzDeathTest, CompileFileOrDieDiesWithPositionedDiagnostics)
{
  EXPECT_DEATH(
      lang::CompileFileOrDie("/nonexistent/nowhere.cenn", {}),
      "nonexistent");

  const std::string dir = ::testing::TempDir();
  const std::string bad = dir + "/bad_scenario.cenn";
  {
    std::ofstream out(bad);
    out << "scenario broken\ndt 0.1\nvar u\nd u/dt = u +\n";
  }
  // The fatal message must carry file:line:col positioning.
  EXPECT_DEATH(lang::CompileFileOrDie(bad, {}), "bad_scenario.cenn:4");
}

// ---------------------------------------------------------------------------
// Compiler semantics worth pinning directly

TEST(CompilerTest, ConstantSubexpressionsFoldLikeCpp)
{
  // (feed + kill) must fold to ONE coefficient before distribution, so
  // the center weight sees a single fused constant exactly like the
  // hand-written -(feed + kill) expression in C++.
  const char* source =
      "scenario fold\ndt 1.0\nparam feed = 0.030\nparam kill = 0.062\n"
      "var v\nd v/dt = -(feed + kill) * v\n";
  lang::ScenarioConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  const lang::CompileResult result = lang::CompileSource(source, cfg);
  ASSERT_TRUE(result.ok()) << lang::FormatDiags("fold", result.diags);
  const EquationSystem& system = result.scenario.system;
  ASSERT_EQ(system.equations.size(), 1u);
  ASSERT_EQ(system.equations[0].terms.size(), 1u);
  EXPECT_EQ(system.equations[0].terms[0].coeff, -(0.030 + 0.062));
}

TEST(CompilerTest, DiagnosticsCarryUsefulPositions)
{
  const struct {
    const char* source;
    const char* fragment;
  } cases[] = {
      {"scenario x\ndt 0.1\nvar u\nd u/dt = u * w\n", "w"},
      {"scenario x\ndt 0.1\nvar u\nd u/dt = u / u\n", "constant"},
      {"scenario x\nvar u\nd u/dt = u\n", "dt"},
      {"scenario x\ndt 0.1\nvar u\n", "equation"},
      {"scenario x\ndt 0.1\nvar u\nd u/dt = u\n"
       "init u = no_such_generator()\n",
       "generator"},
      {"scenario x\ndt 0.1\nvar u\nd u/dt = laplacian(u) * dx(u)\n",
       "spatial"},
  };
  for (const auto& c : cases) {
    const lang::CompileResult result = lang::CompileSource(c.source, {});
    ASSERT_FALSE(result.ok()) << c.source;
    bool found = false;
    for (const lang::Diag& d : result.diags) {
      EXPECT_GE(d.pos.line, 1);
      EXPECT_GE(d.pos.col, 1);
      if (d.message.find(c.fragment) != std::string::npos) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "no diagnostic mentioning '" << c.fragment
                       << "' for:\n"
                       << c.source << "got: "
                       << lang::FormatDiags("t", result.diags);
  }
}

TEST(CompilerTest, SemicolonsMakeOneLineInlineScenariosWork)
{
  // The manifest / serve path ships scenarios as single-line values.
  const char* inline_src =
      "scenario inline_heat; grid 12 12; dt 0.1; steps 5; "
      "param kappa = 1.0; var phi; d phi/dt = kappa * laplacian(phi); "
      "init phi = gaussian_spots(spots=3)";
  const lang::CompileResult result = lang::CompileSource(inline_src, {});
  ASSERT_TRUE(result.ok()) << lang::FormatDiags("inline", result.diags);
  EXPECT_EQ(result.scenario.name, "inline_heat");
  EXPECT_EQ(result.scenario.system.rows, 12u);
  EXPECT_EQ(result.scenario.default_steps, 5u);
}

}  // namespace
}  // namespace cenn
