/**
 * @file
 * LUT subsystem tests: off-chip table construction and evaluation
 * accuracy, exact-sample detection, the delta vs expanded fixed-point
 * datapaths, L1/L2 cache behaviour (FIFO fill, hashed block fill) and
 * the two-level hierarchy's replay semantics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "lut/lut_bank.h"
#include "lut/lut_cache.h"
#include "lut/lut_evaluator.h"
#include "lut/lut_hierarchy.h"
#include "lut/lut_store.h"
#include "lut/off_chip_lut.h"

namespace cenn {
namespace {

LutSpec
UnitSpec(double lo, double hi, int frac_bits)
{
  LutSpec s;
  s.min_p = lo;
  s.max_p = hi;
  s.frac_index_bits = frac_bits;
  return s;
}

// ---- LutSpec -----------------------------------------------------------

TEST(LutSpecTest, SpacingAndPointCount)
{
  EXPECT_DOUBLE_EQ(UnitSpec(0, 8, 0).Spacing(), 1.0);
  EXPECT_DOUBLE_EQ(UnitSpec(0, 8, 2).Spacing(), 0.25);
  EXPECT_EQ(UnitSpec(0, 8, 0).NumPoints(), 9);
  EXPECT_EQ(UnitSpec(0, 1, 2).NumPoints(), 5);
}

TEST(LutSpecTest, ValidationCatchesBadRanges)
{
  EXPECT_DEATH(UnitSpec(1, -1, 0).Validate(), "min_p");
  EXPECT_DEATH(UnitSpec(0, 1, 17).Validate(), "frac_index_bits");
}

// ---- OffChipLut ---------------------------------------------------------

TEST(OffChipLutTest, IndexOfClampsAndFloors)
{
  const auto fn = MakeFunction("id", [](double x) { return x; });
  OffChipLut lut(fn, UnitSpec(0.0, 7.0, 0));
  EXPECT_EQ(lut.NumEntries(), 8);
  EXPECT_EQ(lut.IndexOf(3.7), 3);
  EXPECT_EQ(lut.IndexOf(-5.0), 0);
  EXPECT_EQ(lut.IndexOf(99.0), 7);
  EXPECT_EQ(lut.IndexOf(0.0), 0);
}

TEST(OffChipLutTest, BlockBaseAlignsToEight)
{
  const auto fn = MakeFunction("id", [](double x) { return x; });
  OffChipLut lut(fn, UnitSpec(0.0, 31.0, 0));
  // The paper's example: a miss on p = 3.0 fetches p = 0..7.
  EXPECT_EQ(lut.BlockBase(3), 0);
  EXPECT_EQ(lut.BlockBase(7), 0);
  EXPECT_EQ(lut.BlockBase(8), 8);
  EXPECT_EQ(lut.BlockBase(12), 8);
}

TEST(OffChipLutTest, ExactSampleDetection)
{
  const auto fn = MakeFunction("id", [](double x) { return x; });
  OffChipLut lut(fn, UnitSpec(-4.0, 4.0, 2));  // spacing 0.25
  EXPECT_TRUE(lut.IsExactSample(Fixed32::FromDouble(1.25)));
  EXPECT_TRUE(lut.IsExactSample(Fixed32::FromDouble(-2.0)));
  EXPECT_FALSE(lut.IsExactSample(Fixed32::FromDouble(1.3)));
  // Outside the sampled range nothing is exact.
  EXPECT_FALSE(lut.IsExactSample(Fixed32::FromDouble(9.0)));
}

TEST(OffChipLutTest, ExactSampleReturnsStoredValue)
{
  const auto fn = MakeFunction("e", [](double x) { return std::exp(x); },
                               1e-3);
  OffChipLut lut(fn, UnitSpec(-2.0, 2.0, 0));
  const Fixed32 x = Fixed32::FromInt(1);
  EXPECT_NEAR(lut.EvaluateFixed(x).ToDouble(), std::exp(1.0),
              Fixed32::Epsilon());
}

TEST(OffChipLutTest, DoubleEvaluationAccuracyImprovesWithSpacing)
{
  const auto fn = MakeFunction("tanh", [](double x) { return std::tanh(x); },
                               1e-3);
  double prev_err = 1e9;
  for (int bits : {0, 2, 4, 6}) {
    OffChipLut lut(fn, UnitSpec(-4.0, 4.0, bits));
    double max_err = 0.0;
    for (double x = -3.9; x < 3.9; x += 0.0137) {
      max_err = std::max(max_err,
                         std::abs(lut.EvaluateDouble(x) - std::tanh(x)));
    }
    EXPECT_LT(max_err, prev_err);
    prev_err = max_err;
  }
  EXPECT_LT(prev_err, 5e-8);
}

TEST(OffChipLutTest, DeltaFormBeatsExpandedFormAtLargeStates)
{
  // The paper's literal eq. (10) multiplies quantized c1/c2 by x and
  // x^2; around x = -65 (a membrane potential) that destroys accuracy,
  // while the delta form stays at quantization level. This is the
  // numerical-conditioning ablation of DESIGN.md.
  const auto fn = MakeFunction(
      "rate", [](double x) { return 0.1 * std::exp(-(x + 65.0) / 18.0); },
      1e-3);
  OffChipLut lut(fn, UnitSpec(-80.0, -50.0, 2));
  double delta_err = 0.0;
  double expanded_err = 0.0;
  for (double x = -79.0; x < -51.0; x += 0.0917) {
    const Fixed32 fx = Fixed32::FromDouble(x);
    const double want = fn->Value(x);
    delta_err = std::max(delta_err,
                         std::abs(lut.EvaluateFixed(fx).ToDouble() - want));
    expanded_err = std::max(
        expanded_err,
        std::abs(lut.EvaluateFixedExpanded(fx).ToDouble() - want));
  }
  EXPECT_LT(delta_err, 1e-3);
  EXPECT_GT(expanded_err, 10.0 * delta_err);
}

TEST(OffChipLutTest, FixedEvaluationExactForCubicPolynomials)
{
  const auto fn = NonlinearFunction::Polynomial("cube", {0, 0, 0, 1});
  OffChipLut lut(fn, UnitSpec(-2.0, 2.0, 6));
  for (double x = -1.9; x < 1.9; x += 0.0731) {
    const Fixed32 fx = Fixed32::FromDouble(x);
    const double got = lut.EvaluateFixed(fx).ToDouble();
    EXPECT_NEAR(got, x * x * x, 1e-4) << x;
  }
}

TEST(OffChipLutTest, FixedIndexMatchesDoubleIndexAcrossFullRange)
{
  // The Fixed32 overload extracts the index from the raw Q16.16 bit
  // pattern (hardware upper-bit extraction); it must agree with the
  // double divide/floor path everywhere, including negative states
  // and out-of-range clamps.
  const auto fn = MakeFunction("id", [](double x) { return x; });
  OffChipLut lut(fn, UnitSpec(-4.0, 4.0, 4));
  for (std::int64_t raw = Fixed32::FromDouble(-6.0).raw();
       raw <= Fixed32::FromDouble(6.0).raw(); raw += 97) {
    const Fixed32 fx = Fixed32::FromRaw(static_cast<std::int32_t>(raw));
    EXPECT_EQ(lut.IndexOf(fx), lut.IndexOf(fx.ToDouble())) << raw;
  }
  // Exact sample points and the entry boundaries themselves.
  for (int i = 0; i < lut.NumEntries(); ++i) {
    const double p = lut.Spec().min_p + i * lut.Spec().Spacing();
    EXPECT_EQ(lut.IndexOf(Fixed32::FromDouble(p)), i) << p;
  }
}

TEST(OffChipLutTest, FixedIndexFallsBackWhenMinPOffGrid)
{
  // min_p = -4.1 is not a multiple of the sample spacing, so the raw
  // shift trick does not apply; the overload must fall back to the
  // double path and still agree with it.
  const auto fn = MakeFunction("id", [](double x) { return x; });
  OffChipLut lut(fn, UnitSpec(-4.1, 4.0, 2));
  for (double x = -5.0; x < 5.0; x += 0.0173) {
    const Fixed32 fx = Fixed32::FromDouble(x);
    EXPECT_EQ(lut.IndexOf(fx), lut.IndexOf(fx.ToDouble())) << x;
  }
}

TEST(OffChipLutTest, PackedViewMirrorsEntries)
{
  const auto fn = MakeFunction("tanh", [](double x) { return std::tanh(x); },
                               1e-3);
  OffChipLut lut(fn, UnitSpec(-4.0, 4.0, 3));
  const LutView view = lut.View();
  ASSERT_TRUE(view.Valid());
  ASSERT_EQ(view.num_entries, lut.NumEntries());
  EXPECT_EQ(view.entries, lut.EntriesData());
  EXPECT_DOUBLE_EQ(view.min_p, lut.Spec().min_p);
  EXPECT_DOUBLE_EQ(view.spacing, lut.Spec().Spacing());
  for (int i = 0; i < view.num_entries; ++i) {
    const TaylorTuple& t = lut.EntriesData()[i];
    EXPECT_EQ(view.packed.l_p[i], t.l_p) << i;
    EXPECT_EQ(view.packed.a1[i], t.a1) << i;
    EXPECT_EQ(view.packed.a2[i], t.a2) << i;
    EXPECT_EQ(view.packed.a3[i], t.a3) << i;
    // p is recomputed, not stored: the builder expression must
    // reproduce the stored expansion point bit-for-bit.
    EXPECT_EQ(view.min_p + static_cast<double>(i) * view.spacing, t.p) << i;
  }
}

// ---- L1 cache -----------------------------------------------------------

TEST(L1LutTest, MissThenHit)
{
  L1Lut l1(4);
  EXPECT_FALSE(l1.Access(10));
  l1.Insert(10);
  EXPECT_TRUE(l1.Access(10));
  EXPECT_EQ(l1.Stats().accesses, 2u);
  EXPECT_EQ(l1.Stats().misses, 1u);
}

TEST(L1LutTest, CyclicWritePointerEvictsOldest)
{
  L1Lut l1(2);
  l1.Insert(1);
  l1.Insert(2);
  EXPECT_TRUE(l1.Access(1));
  EXPECT_TRUE(l1.Access(2));
  l1.Insert(3);  // evicts 1 (FIFO)
  EXPECT_FALSE(l1.Access(1));
  EXPECT_TRUE(l1.Access(2));
  EXPECT_TRUE(l1.Access(3));
}

TEST(L1LutTest, ResetInvalidates)
{
  L1Lut l1(4);
  l1.Insert(5);
  l1.Reset();
  EXPECT_FALSE(l1.Access(5));
  EXPECT_EQ(l1.Stats().accesses, 1u);  // reset cleared stats too
}

TEST(L1LutTest, ZeroBlocksDies)
{
  EXPECT_DEATH(L1Lut(0), "at least one block");
}

// ---- L2 cache -----------------------------------------------------------

TEST(L2LutTest, PowerOfTwoRequired)
{
  EXPECT_DEATH(L2Lut(10), "power of two");
}

TEST(L2LutTest, HashedDirectMapping)
{
  L2Lut l2(8);
  l2.InsertBlock(0, 8);  // fills indices 0..7
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(l2.Access(i));
  }
  // Index 8 hashes to slot 0 and conflicts with index 0.
  EXPECT_FALSE(l2.Access(8));
  l2.InsertBlock(8, 8);
  EXPECT_TRUE(l2.Access(8));
  EXPECT_FALSE(l2.Access(0));  // evicted by the conflicting fill
}

TEST(L2LutTest, StatsAccumulate)
{
  L2Lut l2(16);
  l2.Access(1);
  l2.InsertBlock(0, 8);
  l2.Access(1);
  EXPECT_EQ(l2.Stats().accesses, 2u);
  EXPECT_EQ(l2.Stats().misses, 1u);
  EXPECT_DOUBLE_EQ(l2.Stats().MissRate(), 0.5);
}

// ---- Hierarchy ------------------------------------------------------------

LutHierarchyConfig
SmallHierarchy()
{
  LutHierarchyConfig c;
  c.num_pes = 4;
  c.l1_blocks = 2;
  c.num_l2 = 2;
  c.l2_entries = 16;
  c.dram_fetch_block = 8;
  return c;
}

TEST(LutHierarchyTest, ColdMissGoesToDramThenWarms)
{
  LutHierarchy h(SmallHierarchy());
  EXPECT_EQ(h.Lookup(0, 5), LutLevel::kDram);
  // Same PE, same index: now in its L1.
  EXPECT_EQ(h.Lookup(0, 5), LutLevel::kL1);
  // Different PE on the same L2: L1 miss, L2 hit (block was filled).
  EXPECT_EQ(h.Lookup(1, 5), LutLevel::kL2);
  // PE on the other L2 instance: DRAM again.
  EXPECT_EQ(h.Lookup(2, 5), LutLevel::kDram);
  EXPECT_EQ(h.DramFetches(), 2u);
}

TEST(LutHierarchyTest, BlockFillServesNeighborsInL2)
{
  LutHierarchy h(SmallHierarchy());
  EXPECT_EQ(h.Lookup(0, 3), LutLevel::kDram);  // fills 0..7
  for (int idx : {0, 1, 2, 4, 7}) {
    EXPECT_EQ(h.Lookup(0, idx), LutLevel::kL2) << idx;
  }
}

TEST(LutHierarchyTest, L2AssignmentByPeGroup)
{
  LutHierarchy h(SmallHierarchy());
  EXPECT_EQ(h.L2For(0), 0);
  EXPECT_EQ(h.L2For(1), 0);
  EXPECT_EQ(h.L2For(2), 1);
  EXPECT_EQ(h.L2For(3), 1);
}

TEST(LutHierarchyTest, AggregateStatsSumInstances)
{
  LutHierarchy h(SmallHierarchy());
  h.Lookup(0, 1);
  h.Lookup(3, 2);
  const LutCacheStats l1 = h.AggregateL1();
  EXPECT_EQ(l1.accesses, 2u);
  EXPECT_EQ(l1.misses, 2u);
}

TEST(LutHierarchyTest, BadGeometryDies)
{
  LutHierarchyConfig c = SmallHierarchy();
  c.num_l2 = 3;  // does not divide 4
  EXPECT_DEATH(LutHierarchy h(c), "multiple");
}

// ---- LutBank + evaluators --------------------------------------------------

TEST(LutBankTest, GlobalIndicesDisjointAcrossFunctions)
{
  NetworkSpec spec;
  spec.rows = 2;
  spec.cols = 2;
  LayerSpec layer;
  const auto f1 = MakeFunction("f1", [](double x) { return std::sin(x); });
  const auto f2 = MakeFunction("f2", [](double x) { return std::cos(x); });
  Coupling c;
  c.kind = CouplingKind::kState;
  c.src_layer = 0;
  c.kernel = TemplateKernel(3);
  c.kernel.At(0, 0) = TemplateWeight::Nonlinear(1.0, 0, f1);
  c.kernel.At(0, 1) = TemplateWeight::Nonlinear(1.0, 0, f2);
  layer.couplings.push_back(c);
  spec.layers.push_back(layer);

  LutConfig config;
  config.default_spec = UnitSpec(-4.0, 4.0, 0);
  LutStore store;
  auto bank = store.Acquire(spec, config);
  EXPECT_EQ(bank->NumTables(), 2u);
  // Same state, different functions -> different global index.
  EXPECT_NE(bank->GlobalIndex(*f1, 1.0), bank->GlobalIndex(*f2, 1.0));
}

TEST(LutBankTest, UnknownFunctionDies)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 1;
  spec.layers.emplace_back();
  LutStore store;
  auto bank = store.Acquire(spec, LutConfig{});
  const auto stranger = MakeFunction("s", [](double x) { return x; });
  EXPECT_DEATH(bank->Get(*stranger), "no table");
}

TEST(LutEvaluatorTest, FixedAndDoubleVariantsApproximateFunction)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 1;
  LayerSpec layer;
  const auto fn = MakeFunction("exp", [](double x) { return std::exp(x); },
                               1e-3);
  layer.offset_terms.push_back({1.0, {{0, fn, false}}});
  spec.layers.push_back(layer);

  LutConfig config;
  config.default_spec = UnitSpec(-4.0, 4.0, 4);
  LutStore store;
  auto bank = store.Acquire(spec, config);

  LutEvaluatorDouble d(bank);
  LutEvaluatorFixed f(bank);
  for (double x : {-1.7, 0.33, 2.9}) {
    EXPECT_NEAR(d.Evaluate(*fn, x), std::exp(x), 1e-5);
    EXPECT_NEAR(f.Evaluate(*fn, Fixed32::FromDouble(x)).ToDouble(),
                std::exp(x), 1e-3);
  }
}

// ---- LutStore --------------------------------------------------------------

/** A 1x1 spec whose single layer applies `fn` in an offset term. */
NetworkSpec
OffsetSpec(const NonlinearFnPtr& fn)
{
  NetworkSpec spec;
  spec.rows = 1;
  spec.cols = 1;
  LayerSpec layer;
  layer.offset_terms.push_back({1.0, {{0, fn, false}}});
  spec.layers.push_back(layer);
  return spec;
}

TEST(LutStoreTest, AcquiresShareTablesAndCountBuildsOnce)
{
  const auto f1 = MakeFunction("f1", [](double x) { return std::sin(x); });
  const auto f2 = MakeFunction("f2", [](double x) { return std::cos(x); });
  NetworkSpec spec = OffsetSpec(f1);
  spec.layers[0].offset_terms.push_back({1.0, {{0, f2, false}}});

  LutConfig config;
  config.default_spec = UnitSpec(-4.0, 4.0, 2);

  LutStore store;
  auto bank_a = store.Acquire(spec, config);
  auto bank_b = store.Acquire(spec, config);
  EXPECT_EQ(store.Builds(), 2u);           // one per distinct function
  EXPECT_EQ(store.SharedAcquires(), 2u);   // second acquire reused both
  EXPECT_EQ(store.ResidentTables(), 2u);
  EXPECT_GT(store.ResidentBytes(), 0u);
  // Both banks point at the same immutable tables.
  EXPECT_EQ(&bank_a->Get(*f1), &bank_b->Get(*f1));
  EXPECT_EQ(&bank_a->Get(*f2), &bank_b->Get(*f2));
}

TEST(LutStoreTest, LastHandleDropEvictsAndReacquireRebuilds)
{
  const auto fn = MakeFunction("e", [](double x) { return std::exp(x); },
                               1e-3);
  const NetworkSpec spec = OffsetSpec(fn);
  LutConfig config;
  config.default_spec = UnitSpec(-2.0, 2.0, 3);

  LutStore store;
  {
    auto bank = store.Acquire(spec, config);
    auto again = store.Acquire(spec, config);
    EXPECT_EQ(store.Builds(), 1u);
    EXPECT_EQ(store.Evictions(), 0u);
  }
  // Both handles dropped: the table is gone and its bytes released.
  EXPECT_EQ(store.Evictions(), 1u);
  EXPECT_EQ(store.ResidentTables(), 0u);
  EXPECT_EQ(store.ResidentBytes(), 0u);
  // A fresh acquire rebuilds rather than resurrecting dead cache rows.
  auto bank = store.Acquire(spec, config);
  EXPECT_EQ(store.Builds(), 2u);
  EXPECT_EQ(store.ResidentTables(), 1u);
}

TEST(LutStoreTest, DifferentSpecsOrBodiesGetDistinctTables)
{
  const auto fn = MakeFunction("f", [](double x) { return std::sin(x); });
  const auto impostor =
      MakeFunction("f", [](double x) { return std::cos(x); });
  const NetworkSpec spec_a = OffsetSpec(fn);
  const NetworkSpec spec_b = OffsetSpec(impostor);

  LutConfig narrow;
  narrow.default_spec = UnitSpec(-2.0, 2.0, 2);
  LutConfig wide;
  wide.default_spec = UnitSpec(-4.0, 4.0, 2);

  LutStore store;
  auto a = store.Acquire(spec_a, narrow);
  // Same function, different sampling geometry: a second build.
  auto b = store.Acquire(spec_a, wide);
  EXPECT_EQ(store.Builds(), 2u);
  // Same name and geometry but different body: the content
  // fingerprint keeps them apart.
  auto c = store.Acquire(spec_b, narrow);
  EXPECT_EQ(store.Builds(), 3u);
  EXPECT_EQ(store.SharedAcquires(), 0u);
}

TEST(LutStoreTest, ConcurrentAcquiresBuildEachTableOnce)
{
  const auto fn = MakeFunction("tanh", [](double x) { return std::tanh(x); },
                               1e-3);
  const NetworkSpec spec = OffsetSpec(fn);
  LutConfig config;
  config.default_spec = UnitSpec(-4.0, 4.0, 4);

  LutStore store;
  constexpr int kThreads = 8;
  std::vector<LutBankHandle> banks(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &spec, &config, &banks, t] {
      banks[static_cast<std::size_t>(t)] = store.Acquire(spec, config);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(store.Builds(), 1u);
  EXPECT_EQ(store.SharedAcquires(), static_cast<std::uint64_t>(kThreads - 1));
  for (const LutBankHandle& bank : banks) {
    ASSERT_NE(bank, nullptr);
    EXPECT_EQ(&bank->Get(*fn), &banks[0]->Get(*fn));
  }
}

TEST(LutStoreTest, SharedTableOutlivesTheSpecThatBuiltIt)
{
  LutStore store;
  LutBankHandle bank;
  const auto fn = MakeFunction("e", [](double x) { return std::exp(x); },
                               1e-3);
  {
    const NetworkSpec spec = OffsetSpec(fn);
    LutConfig config;
    config.default_spec = UnitSpec(-2.0, 2.0, 3);
    bank = store.Acquire(spec, config);
  }
  // The spec is gone; the interned table holds an owning function
  // handle and still evaluates.
  EXPECT_NEAR(bank->Get(*fn).EvaluateDouble(1.0), std::exp(1.0), 1e-3);
}

TEST(LutKeyTest, CanonicalTextAndOrdering)
{
  const auto fn = MakeFunction("id", [](double x) { return x; });
  const LutKey a = MakeLutKey(*fn, UnitSpec(-2.0, 2.0, 2));
  const LutKey b = MakeLutKey(*fn, UnitSpec(-2.0, 2.0, 2));
  const LutKey c = MakeLutKey(*fn, UnitSpec(-4.0, 4.0, 2));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c || c < a);
  EXPECT_NE(a.ToString().find("id"), std::string::npos);
}

}  // namespace
}  // namespace cenn
