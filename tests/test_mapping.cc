/**
 * @file
 * Mapper tests: finite-difference stencils, layer assignment (incl.
 * second-order chains, eq. 4), self-decay compensation (the paper's
 * "-4/h^2 + 1" center), nonlinear term lowering into WUI templates,
 * reset translation and stability warnings.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/network.h"
#include "mapping/finite_difference.h"
#include "mapping/mapper.h"
#include "mapping/stability.h"

namespace cenn {
namespace {

// ---- Finite differences -------------------------------------------------

TEST(FiniteDifferenceTest, Laplacian5MatchesPaperEq7)
{
  // kappa/h^2 cross, -4 kappa/h^2 center (eq. 7's linear part).
  const auto s = Laplacian5(2.0, 0.5);
  EXPECT_DOUBLE_EQ(s[1], 8.0);
  EXPECT_DOUBLE_EQ(s[3], 8.0);
  EXPECT_DOUBLE_EQ(s[4], -32.0);
  EXPECT_DOUBLE_EQ(s[5], 8.0);
  EXPECT_DOUBLE_EQ(s[7], 8.0);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
}

TEST(FiniteDifferenceTest, StencilsSumToZero)
{
  // Derivative stencils must annihilate constants.
  for (const auto& s :
       {Laplacian5(1.3, 0.7), Laplacian9(0.8, 1.1), CentralDx(2.0, 0.4),
        CentralDy(-1.0, 2.0)}) {
    double sum = 0.0;
    for (double v : s) {
      sum += v;
    }
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

TEST(FiniteDifferenceTest, CentralDerivativesAntisymmetric)
{
  const auto dx = CentralDx(1.0, 1.0);
  EXPECT_DOUBLE_EQ(dx[3], -0.5);
  EXPECT_DOUBLE_EQ(dx[5], 0.5);
  const auto dy = CentralDy(1.0, 1.0);
  EXPECT_DOUBLE_EQ(dy[1], -0.5);
  EXPECT_DOUBLE_EQ(dy[7], 0.5);
}

TEST(FiniteDifferenceTest, BadStepDies)
{
  EXPECT_DEATH(Laplacian5(1.0, 0.0), "positive");
}

TEST(FiniteDifferenceTest, AddStencilsElementwise)
{
  const auto sum = AddStencils(CenterOnly3(2.0), CenterOnly3(3.0));
  EXPECT_DOUBLE_EQ(sum[4], 5.0);
}

// ---- Mapper: linear systems -----------------------------------------------

EquationSystem
HeatSystem(double kappa, double h, double dt)
{
  EquationSystem sys;
  sys.name = "heat-test";
  sys.rows = 4;
  sys.cols = 4;
  sys.h = h;
  sys.dt = dt;
  EquationDef eq;
  eq.var_name = "phi";
  eq.terms.push_back(Term::Linear(kappa, SpatialOp::kLaplacian, 0));
  sys.equations.push_back(eq);
  return sys;
}

TEST(MapperTest, HeatCenterWeightIsMinus4OverH2Plus1)
{
  // The paper's eq. (7) center: -4 kappa/h^2 + 1 (the +1 cancels the
  // intrinsic -x of eq. 1; our mapper applies it for any kappa).
  const NetworkSpec spec = Mapper::Map(HeatSystem(2.0, 0.5, 0.01));
  ASSERT_EQ(spec.NumLayers(), 1);
  ASSERT_EQ(spec.layers[0].couplings.size(), 1u);
  const TemplateKernel& k = spec.layers[0].couplings[0].kernel;
  EXPECT_DOUBLE_EQ(k.At(0, 0).constant, -4.0 * 2.0 / 0.25 + 1.0);
  EXPECT_DOUBLE_EQ(k.At(0, 1).constant, 2.0 / 0.25);
  EXPECT_TRUE(k.IsLinear());
}

TEST(MapperTest, PureSourceBecomesOffsetZ)
{
  EquationSystem sys = HeatSystem(1.0, 1.0, 0.01);
  sys.equations[0].terms.push_back(Term::Source(3.5));
  const NetworkSpec spec = Mapper::Map(sys);
  EXPECT_DOUBLE_EQ(spec.layers[0].z, 3.5);
}

TEST(MapperTest, SecondOrderEquationGetsChainLayer)
{
  // Wave-like: d^2 w/dt^2 = Lap(w): expect layers w and w_dot (eq. 4).
  EquationSystem sys;
  sys.name = "wave";
  sys.rows = 4;
  sys.cols = 4;
  sys.h = 1.0;
  sys.dt = 0.01;
  EquationDef eq;
  eq.var_name = "w";
  eq.time_order = 2;
  eq.terms.push_back(Term::Linear(1.0, SpatialOp::kLaplacian, 0));
  sys.equations.push_back(eq);

  MapperReport report;
  const NetworkSpec spec = Mapper::MapWithReport(sys, &report);
  ASSERT_EQ(spec.NumLayers(), 2);
  EXPECT_EQ(spec.layers[0].name, "w");
  EXPECT_EQ(spec.layers[1].name, "w_dot");
  EXPECT_EQ(report.var_to_layer[0], 0);

  // Layer w: dx/dt = -x + (chain + self-compensation): the chain
  // coupling has center 1 toward layer 1 plus +1 self center.
  bool found_chain = false;
  for (const auto& c : spec.layers[0].couplings) {
    if (c.src_layer == 1) {
      EXPECT_DOUBLE_EQ(c.kernel.At(0, 0).constant, 1.0);
      found_chain = true;
    }
  }
  EXPECT_TRUE(found_chain);
  // The Laplacian lands on the chain layer's RHS, from layer w.
  bool found_lap = false;
  for (const auto& c : spec.layers[1].couplings) {
    if (c.src_layer == 0 && c.kernel.At(0, 1).constant == 1.0) {
      found_lap = true;
    }
  }
  EXPECT_TRUE(found_lap);
}

TEST(MapperTest, WaveEquationOscillates)
{
  // Functional check of the second-order chain: a standing wave's
  // energy stays bounded and the center cell oscillates in sign.
  EquationSystem sys;
  sys.name = "wave";
  sys.rows = 16;
  sys.cols = 16;
  sys.h = 1.0;
  sys.dt = 0.05;
  EquationDef eq;
  eq.var_name = "w";
  eq.time_order = 2;
  eq.terms.push_back(Term::Linear(1.0, SpatialOp::kLaplacian, 0));
  eq.initial.assign(16 * 16, 0.0);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      eq.initial[r * 16 + c] =
          std::sin(M_PI * static_cast<double>(r) / 15.0) *
          std::sin(M_PI * static_cast<double>(c) / 15.0);
    }
  }
  sys.equations.push_back(eq);

  MultilayerCenn<double> net(Mapper::Map(sys));
  const double x0 = net.StateDoubles(0)[8 * 16 + 8];
  EXPECT_GT(x0, 0.9);
  bool went_negative = false;
  for (int i = 0; i < 1000; ++i) {
    net.Step();
    const double x = net.StateDoubles(0)[8 * 16 + 8];
    EXPECT_LT(std::abs(x), 2.0);  // bounded
    went_negative |= x < -0.3;
  }
  EXPECT_TRUE(went_negative);  // oscillated through zero
}

// ---- Mapper: nonlinear systems ----------------------------------------------

TEST(MapperTest, NonlinearTermGetsWuiFlaggedKernel)
{
  EquationSystem sys = HeatSystem(1.0, 1.0, 0.01);
  const auto sq = NonlinearFunction::Polynomial("sq", {0, 0, 1});
  sys.equations[0].terms.push_back(
      Term::Nonlinear(-0.5, 0, sq, SpatialOp::kIdentity, 0));
  MapperReport report;
  const NetworkSpec spec = Mapper::MapWithReport(sys, &report);
  EXPECT_EQ(report.templates_needing_update, 1);
  EXPECT_EQ(report.nonlinear_weights, 1);
  // The nonlinear coupling is separate from the linear accumulator.
  ASSERT_EQ(spec.layers[0].couplings.size(), 2u);
  const TemplateKernel& nk = spec.layers[0].couplings[1].kernel;
  EXPECT_DOUBLE_EQ(nk.At(0, 0).constant, -0.5);
  EXPECT_TRUE(nk.At(0, 0).NeedsUpdate());
}

TEST(MapperTest, NonlinearSourceBecomesOffsetTerm)
{
  EquationSystem sys = HeatSystem(1.0, 1.0, 0.01);
  const auto sq = NonlinearFunction::Polynomial("sq", {0, 0, 1});
  sys.equations[0].terms.push_back(Term::NonlinearSource(2.0, 0, sq));
  const NetworkSpec spec = Mapper::Map(sys);
  ASSERT_EQ(spec.layers[0].offset_terms.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.layers[0].offset_terms[0].constant, 2.0);
  EXPECT_EQ(spec.layers[0].offset_terms[0].factors.size(), 1u);
}

TEST(MapperTest, InputTermBecomesFeedforwardTemplate)
{
  EquationSystem sys = HeatSystem(1.0, 1.0, 0.01);
  sys.equations[0].terms.push_back(
      Term::Linear(2.0, SpatialOp::kInput, 0));
  sys.equations[0].input.assign(16, 1.0);
  const NetworkSpec spec = Mapper::Map(sys);
  bool found = false;
  for (const auto& c : spec.layers[0].couplings) {
    if (c.kind == CouplingKind::kInput) {
      EXPECT_DOUBLE_EQ(c.kernel.At(0, 0).constant, 2.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MapperTest, ResetRulesTranslateVarIndices)
{
  EquationSystem sys;
  sys.name = "resets";
  sys.rows = 2;
  sys.cols = 2;
  sys.dt = 0.1;
  EquationDef a;
  a.var_name = "a";
  a.time_order = 2;  // occupies layers 0 and 1
  sys.equations.push_back(a);
  EquationDef b;
  b.var_name = "b";
  sys.equations.push_back(b);  // layer 2

  VarResetRule rule;
  rule.trigger_var = 1;  // variable b
  rule.threshold = 1.0;
  rule.actions.push_back({1, true, 0.0});
  sys.resets.push_back(rule);

  const NetworkSpec spec = Mapper::Map(sys);
  ASSERT_EQ(spec.resets.size(), 1u);
  EXPECT_EQ(spec.resets[0].trigger_layer, 2);
  EXPECT_EQ(spec.resets[0].actions[0].layer, 2);
}

// ---- Radius-2 (5x5) templates ---------------------------------------------

TEST(MapperTest, FourthOrderLaplacianProducesFiveByFiveKernel)
{
  EquationSystem sys = HeatSystem(1.0, 1.0, 0.01);
  sys.equations[0].terms[0].op = SpatialOp::kLaplacian4th;
  const NetworkSpec spec = Mapper::Map(sys);
  EXPECT_EQ(spec.MaxKernelSide(), 5);
  // The 5x5 linear kernel carries the stencil; the +1 self-decay
  // compensation lands in a separate 3x3 kernel.
  bool found5 = false;
  for (const auto& c : spec.layers[0].couplings) {
    if (c.kernel.Side() == 5) {
      EXPECT_DOUBLE_EQ(c.kernel.At(0, 0).constant, -60.0 / 12.0);
      EXPECT_DOUBLE_EQ(c.kernel.At(0, 1).constant, 16.0 / 12.0);
      EXPECT_DOUBLE_EQ(c.kernel.At(0, 2).constant, -1.0 / 12.0);
      EXPECT_DOUBLE_EQ(c.kernel.At(1, 1).constant, 0.0);
      found5 = true;
    }
  }
  EXPECT_TRUE(found5);
}

TEST(FiniteDifferenceTest, Laplacian4thAnnihilatesQuadratics)
{
  // Exact for polynomials up to degree 5: check on x^2 + y^2 the
  // stencil returns 4 (= Lap of x^2 + y^2) away from boundaries.
  const auto k = Laplacian4th(1.0, 1.0);
  double acc = 0.0;
  for (int dr = -2; dr <= 2; ++dr) {
    for (int dc = -2; dc <= 2; ++dc) {
      const double val = static_cast<double>(dr * dr + dc * dc);
      acc += k[static_cast<std::size_t>((dr + 2) * 5 + (dc + 2))] * val;
    }
  }
  EXPECT_NEAR(acc, 4.0, 1e-12);
}

TEST(MapperTest, FourthOrderIsMoreAccurateOnSmoothModes)
{
  // One-step eigenvalue measurement on a *periodic* grid, where the
  // Fourier mode is an exact eigenvector of both stencils: the
  // measured lambda must track the continuum -2k^2 far more closely
  // for the 4th-order operator (O(k^6) vs O(k^4) truncation).
  const std::size_t n = 32;
  const double k = 2.0 * M_PI * 2.0 / static_cast<double>(n);
  const double dt = 0.01;
  auto measured_lambda = [&](SpatialOp op) {
    EquationSystem sys;
    sys.name = "mode";
    sys.rows = n;
    sys.cols = n;
    sys.h = 1.0;
    sys.dt = dt;
    sys.boundary = {BoundaryKind::kPeriodic, 0.0};
    EquationDef eq;
    eq.var_name = "phi";
    eq.terms.push_back(Term::Linear(1.0, op, 0));
    eq.initial.resize(n * n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        eq.initial[r * n + c] = std::cos(k * static_cast<double>(r)) *
                                std::cos(k * static_cast<double>(c));
      }
    }
    sys.equations.push_back(eq);
    MultilayerCenn<double> net(Mapper::Map(sys));
    const double a0 = net.StateDoubles(0)[0];
    net.Step();
    const double a1 = net.StateDoubles(0)[0];
    return (a1 / a0 - 1.0) / dt;
  };
  const double continuum = -2.0 * k * k;
  const double err2 =
      std::abs(measured_lambda(SpatialOp::kLaplacian) - continuum);
  const double err4 =
      std::abs(measured_lambda(SpatialOp::kLaplacian4th) - continuum);
  EXPECT_LT(err4, err2 / 10.0);
}

// ---- Stability ---------------------------------------------------------------

TEST(StabilityTest, DiffusionLimit)
{
  EXPECT_DOUBLE_EQ(MaxStableDtDiffusion(1.0, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(MaxStableDtDiffusion(-2.0, 1.0), 0.125);
  EXPECT_TRUE(std::isinf(MaxStableDtDiffusion(0.0, 1.0)));
}

TEST(StabilityTest, WarnsOnUnstableDiffusion)
{
  const auto warnings = CheckStability(HeatSystem(1.0, 1.0, 0.3));
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("diffusion limit"), std::string::npos);
}

TEST(StabilityTest, SilentOnStableSystem)
{
  EXPECT_TRUE(CheckStability(HeatSystem(1.0, 1.0, 0.2)).empty());
}

TEST(StabilityTest, WarnsOnAdvectionCfl)
{
  EquationSystem sys = HeatSystem(0.0, 1.0, 2.0);
  sys.equations[0].terms.push_back(Term::Linear(1.0, SpatialOp::kDx, 0));
  const auto warnings = CheckStability(sys);
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings.back().find("CFL"), std::string::npos);
}

// ---- EquationSystem validation -------------------------------------------------

TEST(EquationSystemTest, VarIndexByName)
{
  EquationSystem sys = HeatSystem(1.0, 1.0, 0.01);
  EXPECT_EQ(sys.VarIndex("phi"), 0);
  EXPECT_DEATH(sys.VarIndex("nope"), "unknown variable");
}

TEST(EquationSystemTest, ValidateCatchesBadTimeOrder)
{
  EquationSystem sys = HeatSystem(1.0, 1.0, 0.01);
  sys.equations[0].time_order = 3;
  EXPECT_DEATH(sys.Validate(), "time order");
}

TEST(EquationSystemTest, ValidateCatchesSourceWithOperator)
{
  EquationSystem sys = HeatSystem(1.0, 1.0, 0.01);
  Term bad;
  bad.var = -1;
  bad.op = SpatialOp::kLaplacian;
  sys.equations[0].terms.push_back(bad);
  EXPECT_DEATH(sys.Validate(), "source term");
}

}  // namespace
}  // namespace cenn
