/**
 * @file
 * Integration tests: for every benchmark model, the mapped CeNN program
 * executed by the double-precision functional engine must agree with
 * the model's independent hand-coded reference integrator. This
 * validates the whole Section-2 mapping chain (layer assignment,
 * finite-difference templates, nonlinear factors, offsets, resets).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/network.h"
#include "mapping/mapper.h"
#include "models/benchmark_model.h"

namespace cenn {
namespace {

struct AgreementCase {
  const char* model;
  int steps;
  double tolerance;
};

class ModelAgreementTest : public ::testing::TestWithParam<AgreementCase>
{
};

TEST_P(ModelAgreementTest, CennDoubleMatchesReference)
{
  const AgreementCase& tc = GetParam();
  ModelConfig config;
  config.rows = 32;
  config.cols = 32;
  config.seed = 7;
  const auto model = MakeModel(tc.model, config);

  MapperReport report;
  const NetworkSpec spec = Mapper::MapWithReport(model->System(), &report);
  MultilayerCenn<double> engine(spec);
  engine.Run(static_cast<std::uint64_t>(tc.steps));

  const auto reference = model->ReferenceRun(tc.steps);
  for (int var : model->ObservedVars()) {
    const int layer = report.var_to_layer[static_cast<std::size_t>(var)];
    const std::vector<double> got = engine.StateDoubles(layer);
    const std::vector<double>& want =
        reference[static_cast<std::size_t>(var)];
    ASSERT_EQ(got.size(), want.size());
    double max_err = 0.0;
    for (std::size_t i = 0; i < got.size(); ++i) {
      max_err = std::max(max_err, std::abs(got[i] - want[i]));
    }
    EXPECT_LE(max_err, tc.tolerance)
        << tc.model << " variable " << var << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelAgreementTest,
    ::testing::Values(AgreementCase{"heat", 100, 1e-10},
                      AgreementCase{"fisher", 200, 1e-10},
                      AgreementCase{"navier_stokes", 150, 1e-9},
                      AgreementCase{"reaction_diffusion", 300, 1e-9},
                      AgreementCase{"gray_scott", 400, 1e-9},
                      AgreementCase{"hodgkin_huxley", 800, 2e-4},
                      AgreementCase{"izhikevich", 400, 1e-6},
                      AgreementCase{"wave", 300, 1e-9},
                      AgreementCase{"poisson", 400, 1e-9},
                      AgreementCase{"brusselator", 500, 1e-9}),
    [](const ::testing::TestParamInfo<AgreementCase>& info) {
      return std::string(info.param.model);
    });

TEST(ModelFactoryTest, AllNamesConstruct)
{
  for (const auto& name : AllModelNames()) {
    ModelConfig config;
    config.rows = 8;
    config.cols = 8;
    const auto model = MakeModel(name, config);
    EXPECT_EQ(model->Name(), name);
    EXPECT_GT(model->DefaultSteps(), 0);
    model->System().Validate();
  }
}

TEST(ModelFactoryTest, UnknownNameDies)
{
  EXPECT_DEATH(MakeModel("no_such_model"), "unknown benchmark model");
}

TEST(ModelFactoryTest, PaperListHasSixEntries)
{
  EXPECT_EQ(PaperBenchmarkNames().size(), 6u);
}

}  // namespace
}  // namespace cenn
