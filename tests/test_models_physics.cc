/**
 * @file
 * Physics-level tests of the benchmark models: analytic decay rates
 * for heat, logistic saturation for Fisher, excitability for FHN,
 * viscous energy decay for Navier-Stokes, HH rate functions, steady
 * states and spiking, and Izhikevich firing behaviour. These validate
 * that each model implements the equation it claims, independent of
 * the CeNN machinery.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/network.h"
#include "mapping/mapper.h"
#include "models/brusselator.h"
#include "models/fisher.h"
#include "models/heat.h"
#include "models/hodgkin_huxley.h"
#include "models/izhikevich.h"
#include "models/navier_stokes.h"
#include "models/poisson.h"
#include "models/reaction_diffusion.h"
#include "models/ref_util.h"
#include "models/wave.h"

namespace cenn {
namespace {

double
Sum(const std::vector<double>& v)
{
  double s = 0.0;
  for (double x : v) {
    s += x;
  }
  return s;
}

double
MaxAbs(const std::vector<double>& v)
{
  double m = 0.0;
  for (double x : v) {
    m = std::max(m, std::abs(x));
  }
  return m;
}

// ---- Heat -----------------------------------------------------------------

TEST(HeatPhysicsTest, ZeroFluxConservesTotalHeat)
{
  ModelConfig config;
  config.rows = 24;
  config.cols = 24;
  HeatModel model(config);
  const double before = Sum(model.System().equations[0].initial);
  const auto after = model.ReferenceRun(300);
  EXPECT_NEAR(Sum(after[0]), before, 1e-8 * before + 1e-9);
}

TEST(HeatPhysicsTest, PeakDecaysMonotonically)
{
  ModelConfig config;
  config.rows = 24;
  config.cols = 24;
  HeatModel model(config);
  double prev = MaxAbs(model.System().equations[0].initial);
  for (int chunk = 1; chunk <= 4; ++chunk) {
    const double now = MaxAbs(model.ReferenceRun(chunk * 50)[0]);
    EXPECT_LT(now, prev + 1e-12);
    prev = now;
  }
}

TEST(HeatPhysicsTest, SineModeDecaysAtAnalyticRate)
{
  // For a discrete sine mode on a periodic-free axis the 5-point
  // Laplacian eigenvalue is -4 sin^2(k/2)/h^2; run the CeNN-mapped
  // engine on a hand-built sine field and check the decay factor.
  const std::size_t n = 32;
  EquationSystem sys;
  sys.name = "heat-mode";
  sys.rows = n;
  sys.cols = n;
  sys.h = 1.0;
  sys.dt = 0.1;
  EquationDef eq;
  eq.var_name = "phi";
  eq.terms.push_back(Term::Linear(1.0, SpatialOp::kLaplacian, 0));
  eq.initial.resize(n * n);
  // cos profile has zero normal derivative at the clamped edges, so it
  // is compatible with the zero-flux boundary.
  const double k = M_PI / static_cast<double>(n - 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      eq.initial[r * n + c] = std::cos(k * static_cast<double>(r)) *
                              std::cos(k * static_cast<double>(c));
    }
  }
  sys.equations.push_back(eq);

  MultilayerCenn<double> net(Mapper::Map(sys));
  const double amp0 = net.StateDoubles(0)[0];
  const int steps = 50;
  net.Run(steps);
  const double amp1 = net.StateDoubles(0)[0];

  const double lambda = -8.0 * std::pow(std::sin(k / 2.0), 2);
  const double expected = std::pow(1.0 + sys.dt * lambda, steps);
  EXPECT_NEAR(amp1 / amp0, expected, 0.02);
}

// ---- Fisher -----------------------------------------------------------------

TEST(FisherPhysicsTest, PopulationSaturatesAtCarryingCapacity)
{
  ModelConfig config;
  config.rows = 24;
  config.cols = 24;
  FisherModel model(config);
  const auto u = model.ReferenceRun(3000)[0];
  for (double v : u) {
    EXPECT_NEAR(v, 1.0, 1e-3);
  }
}

TEST(FisherPhysicsTest, FrontAdvances)
{
  ModelConfig config;
  config.rows = 48;
  config.cols = 48;
  FisherModel model(config);
  auto occupied = [&](const std::vector<double>& u) {
    std::size_t n = 0;
    for (double v : u) {
      n += v > 0.5 ? 1 : 0;
    }
    return n;
  };
  const std::size_t early = occupied(model.ReferenceRun(100)[0]);
  const std::size_t late = occupied(model.ReferenceRun(400)[0]);
  EXPECT_GT(late, early + 50);
}

// ---- Reaction-diffusion -------------------------------------------------------

TEST(FhnPhysicsTest, StatesStayBounded)
{
  ModelConfig config;
  config.rows = 32;
  config.cols = 32;
  ReactionDiffusionModel model(config);
  const auto fields = model.ReferenceRun(2000);
  EXPECT_LT(MaxAbs(fields[0]), 3.0);
  EXPECT_LT(MaxAbs(fields[1]), 3.0);
}

TEST(FhnPhysicsTest, MediumIsActiveNotFrozen)
{
  // The excitable medium keeps evolving: u at a probe cell changes
  // significantly between two late snapshots.
  ModelConfig config;
  config.rows = 32;
  config.cols = 32;
  ReactionDiffusionModel model(config);
  const auto a = model.ReferenceRun(1500)[0];
  const auto b = model.ReferenceRun(1800)[0];
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = std::max(diff, std::abs(a[i] - b[i]));
  }
  EXPECT_GT(diff, 0.05);
}

TEST(GrayScottPhysicsTest, PatternEmergesFromSeed)
{
  ModelConfig config;
  config.rows = 48;
  config.cols = 48;
  GrayScottModel model(config);
  const auto fields = model.ReferenceRun(2000);
  // v spreads beyond the seeded square but does not take over.
  std::size_t active = 0;
  for (double v : fields[1]) {
    active += v > 0.1 ? 1 : 0;
  }
  EXPECT_GT(active, 150u);
  EXPECT_LT(active, fields[1].size() - 200);
  // u stays in [0, 1] up to small overshoot.
  EXPECT_LT(MaxAbs(fields[0]), 1.05);
}

// ---- Navier-Stokes --------------------------------------------------------------

TEST(NavierStokesPhysicsTest, KineticEnergyDecays)
{
  ModelConfig config;
  config.rows = 32;
  config.cols = 32;
  NavierStokesModel model(config);
  auto energy = [](const std::vector<std::vector<double>>& f) {
    double e = 0.0;
    for (std::size_t i = 0; i < f[0].size(); ++i) {
      e += f[0][i] * f[0][i] + f[1][i] * f[1][i];
    }
    return e;
  };
  const double e1 = energy(model.ReferenceRun(50));
  const double e2 = energy(model.ReferenceRun(150));
  const double e3 = energy(model.ReferenceRun(250));
  EXPECT_LT(e2, e1);
  EXPECT_LT(e3, e2);
  EXPECT_GT(e3, 0.0);
}

// ---- Hodgkin-Huxley ---------------------------------------------------------------

TEST(HodgkinHuxleyPhysicsTest, RateFunctionsMatchTextbookValues)
{
  // Classic values at V = -65 mV (rest).
  EXPECT_NEAR(HodgkinHuxleyModel::AlphaM(-65.0), 0.2236, 1e-3);
  EXPECT_NEAR(HodgkinHuxleyModel::BetaM(-65.0), 4.0, 1e-9);
  EXPECT_NEAR(HodgkinHuxleyModel::AlphaH(-65.0), 0.07, 1e-9);
  EXPECT_NEAR(HodgkinHuxleyModel::BetaH(-65.0),
              1.0 / (1.0 + std::exp(3.0)), 1e-9);
  EXPECT_NEAR(HodgkinHuxleyModel::AlphaN(-65.0), 0.0582, 1e-3);
  EXPECT_NEAR(HodgkinHuxleyModel::BetaN(-65.0), 0.125, 1e-9);
}

TEST(HodgkinHuxleyPhysicsTest, RemovableSingularitiesHandled)
{
  // alpha_m at exactly V = -40 and alpha_n at V = -55 are 0/0 limits.
  EXPECT_NEAR(HodgkinHuxleyModel::AlphaM(-40.0), 1.0, 1e-6);
  EXPECT_NEAR(HodgkinHuxleyModel::AlphaN(-55.0), 0.1, 1e-6);
  // Continuity across the singular points.
  EXPECT_NEAR(HodgkinHuxleyModel::AlphaM(-40.0 + 1e-7),
              HodgkinHuxleyModel::AlphaM(-40.0 - 1e-7), 1e-6);
}

TEST(HodgkinHuxleyPhysicsTest, RestingStateIsStationaryWithoutStimulus)
{
  ModelConfig config;
  config.rows = 8;
  config.cols = 8;
  HodgkinHuxleyParams params;
  params.stimulus = 0.0;
  HodgkinHuxleyModel model(config, params);
  const auto fields = model.ReferenceRun(500);
  for (double v : fields[0]) {
    EXPECT_NEAR(v, params.rest_v, 0.6);  // drifts toward E_rest slightly
  }
}

TEST(HodgkinHuxleyPhysicsTest, StimulatedCellsSpike)
{
  ModelConfig config;
  config.rows = 16;
  config.cols = 16;
  HodgkinHuxleyModel model(config);
  // Track the center cell across reference runs: it must exceed 0 mV
  // (a spike) at some point within 20 ms.
  bool spiked = false;
  for (int steps = 100; steps <= 2000 && !spiked; steps += 100) {
    const auto fields = model.ReferenceRun(steps);
    const double v_center = fields[0][8 * 16 + 8];
    spiked = v_center > 0.0;
  }
  EXPECT_TRUE(spiked);
}

TEST(HodgkinHuxleyPhysicsTest, GatingVariablesStayInUnitInterval)
{
  ModelConfig config;
  config.rows = 8;
  config.cols = 8;
  HodgkinHuxleyModel model(config);
  const auto fields = model.ReferenceRun(1500);
  for (int var : {1, 2, 3}) {
    for (double x : fields[static_cast<std::size_t>(var)]) {
      EXPECT_GE(x, -0.01);
      EXPECT_LE(x, 1.01);
    }
  }
}

// ---- Izhikevich -------------------------------------------------------------------

TEST(IzhikevichPhysicsTest, NeuronsSpikeAndReset)
{
  ModelConfig config;
  config.rows = 8;
  config.cols = 8;
  IzhikevichModel model(config);
  const auto fields = model.ReferenceRun(1000);
  // After resets, v never exceeds threshold + one-step overshoot.
  for (double v : fields[0]) {
    EXPECT_LT(v, 200.0);
    EXPECT_GT(v, -120.0);
  }
}

TEST(IzhikevichPhysicsTest, StrongerDriveSpikesFirst)
{
  // A single neuron with I = 10 spikes; with I = 0 it stays quiet.
  ModelConfig config;
  config.rows = 1;
  config.cols = 1;
  IzhikevichParams hot;
  hot.i_min = hot.i_max = 10.0;
  IzhikevichModel driven(config, hot);
  IzhikevichParams cold;
  cold.i_min = cold.i_max = 0.0;
  IzhikevichModel quiet(config, cold);

  // Spiking shows as u accumulating d per spike.
  const double u_driven = driven.ReferenceRun(1000)[1][0];
  const double u_quiet = quiet.ReferenceRun(1000)[1][0];
  EXPECT_GT(u_driven, u_quiet + 1.0);
}

TEST(IzhikevichPhysicsTest, CennEngineAppliesResetIdentically)
{
  // The CeNN fixed-point engine's thresholded reset must keep v
  // bounded exactly like the reference.
  ModelConfig config;
  config.rows = 8;
  config.cols = 8;
  IzhikevichModel model(config);
  MultilayerCenn<Fixed32> net(Mapper::Map(model.System()));
  net.Run(1000);
  for (double v : net.StateDoubles(0)) {
    EXPECT_LT(v, 200.0);
  }
}

// ---- Brusselator ------------------------------------------------------------------

TEST(BrusselatorPhysicsTest, OscillatesOnLimitCycle)
{
  // B > 1 + A^2: u at a probe cell must repeatedly cross its steady
  // value A in both directions.
  ModelConfig config;
  config.rows = 12;
  config.cols = 12;
  BrusselatorModel model(config);
  const double a = model.Params().a;
  MultilayerCenn<double> net(Mapper::Map(model.System()));
  int crossings = 0;
  double prev = net.StateDoubles(0)[70];
  for (int s = 0; s < 3000; ++s) {
    net.Step();
    const double now = net.StateDoubles(0)[70];
    if ((prev - a) * (now - a) < 0.0) {
      ++crossings;
    }
    prev = now;
    ASSERT_LT(std::abs(now), 20.0);  // bounded orbit
  }
  EXPECT_GE(crossings, 4);
}

TEST(BrusselatorPhysicsTest, StableRegimeConvergesToSteadyState)
{
  ModelConfig config;
  config.rows = 8;
  config.cols = 8;
  BrusselatorParams params;
  params.b = 1.2;  // B < 1 + A^2 = 2: stable fixed point
  BrusselatorModel model(config, params);
  const auto fields = model.ReferenceRun(8000);
  for (double u : fields[0]) {
    EXPECT_NEAR(u, params.a, 0.02);
  }
  for (double v : fields[1]) {
    EXPECT_NEAR(v, params.b / params.a, 0.02);
  }
}

// ---- Wave -------------------------------------------------------------------------

TEST(WavePhysicsTest, EnergyBoundedAndPulsePropagates)
{
  ModelConfig config;
  config.rows = 32;
  config.cols = 32;
  WaveModel model(config);
  const auto initial = model.System().equations[0].initial;
  const double peak0 = MaxAbs(initial);
  const auto later = model.ReferenceRun(150);
  // Displacement stays bounded (damping beats Euler growth)...
  EXPECT_LT(MaxAbs(later[0]), 2.0 * peak0);
  // ...and the pulse has moved: the field changed substantially.
  double change = 0.0;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    change = std::max(change, std::abs(later[0][i] - initial[i]));
  }
  EXPECT_GT(change, 0.3 * peak0);
}

TEST(WavePhysicsTest, VelocityLayerStartsAtRest)
{
  ModelConfig config;
  config.rows = 16;
  config.cols = 16;
  WaveModel model(config);
  EXPECT_TRUE(model.System().equations[1].initial.empty());
}

// ---- Poisson ----------------------------------------------------------------------

TEST(PoissonPhysicsTest, RelaxationConvergesToSmallResidual)
{
  ModelConfig config;
  config.rows = 24;
  config.cols = 24;
  PoissonModel model(config);
  const double res_early = model.Residual(model.ReferenceRun(100)[0]);
  const double res_late = model.Residual(model.ReferenceRun(3000)[0]);
  EXPECT_LT(res_late, res_early / 10.0);
  EXPECT_LT(res_late, 5e-3);
}

TEST(PoissonPhysicsTest, ManufacturedSolutionRecovered)
{
  // Build rho = -L_h(phi*) from a known potential using the same
  // discrete operator; relaxation must recover phi* up to a constant.
  const std::size_t n = 16;
  ModelConfig config;
  config.rows = n;
  config.cols = n;
  std::vector<double> phi_star(n * n);
  const double k = M_PI / static_cast<double>(n - 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      phi_star[r * n + c] = std::cos(k * static_cast<double>(r)) *
                            std::cos(k * static_cast<double>(c));
    }
  }
  EquationSystem sys;
  sys.name = "poisson-manufactured";
  sys.rows = n;
  sys.cols = n;
  sys.h = 1.0;
  sys.dt = 0.2;
  EquationDef eq;
  eq.var_name = "phi";
  eq.terms.push_back(Term::Linear(1.0, SpatialOp::kLaplacian, 0));
  eq.terms.push_back(Term::Linear(1.0, SpatialOp::kInput, 0));
  eq.input.resize(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      eq.input[r * n + c] =
          -refutil::Lap5(phi_star, r, c, n, n, 1.0);
    }
  }
  sys.equations.push_back(eq);

  MultilayerCenn<double> net(Mapper::Map(sys));
  net.Run(6000);
  const auto phi = net.StateDoubles(0);
  // Compare mean-subtracted fields (Neumann solution is unique up to
  // a constant).
  double mean_phi = 0.0;
  double mean_star = 0.0;
  for (std::size_t i = 0; i < phi.size(); ++i) {
    mean_phi += phi[i];
    mean_star += phi_star[i];
  }
  mean_phi /= static_cast<double>(phi.size());
  mean_star /= static_cast<double>(phi.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < phi.size(); ++i) {
    max_err = std::max(max_err, std::abs((phi[i] - mean_phi) -
                                         (phi_star[i] - mean_star)));
  }
  EXPECT_LT(max_err, 1e-3);
}

}  // namespace
}  // namespace cenn
