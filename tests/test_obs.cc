/**
 * @file
 * Unit tests for the observability layer (src/obs): stat registry
 * naming/dump/diff semantics, trace ring buffer + category masking +
 * Chrome JSON well-formedness (validated with a real JSON parser),
 * profiler zones, and the non-perturbation guarantee — a traced arch
 * simulation reports exactly the same numbers as an untraced one.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/simulator.h"
#include "mapping/mapper.h"
#include "models/benchmark_model.h"
#include "obs/metrics_emitter.h"
#include "obs/profile.h"
#include "obs/stat_registry.h"
#include "obs/stats_io.h"
#include "obs/trace.h"

namespace cenn {
namespace {

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser: validates syntax only. Good
// enough to assert the emitted trace/stat files are real JSON rather
// than JSON-shaped text.
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string& text) : text_(text) {}

    bool Valid()
    {
        pos_ = 0;
        SkipWs();
        if (!Value()) {
          return false;
        }
        SkipWs();
        return pos_ == text_.size();
    }

  private:
    bool Value()
    {
        if (pos_ >= text_.size()) {
          return false;
        }
        switch (text_[pos_]) {
          case '{':
            return Object();
          case '[':
            return Array();
          case '"':
            return String();
          case 't':
            return Literal("true");
          case 'f':
            return Literal("false");
          case 'n':
            return Literal("null");
          default:
            return Number();
        }
    }

    bool Object()
    {
        ++pos_;  // '{'
        SkipWs();
        if (Peek() == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          SkipWs();
          if (!String()) {
            return false;
          }
          SkipWs();
          if (Peek() != ':') {
            return false;
          }
          ++pos_;
          SkipWs();
          if (!Value()) {
            return false;
          }
          SkipWs();
          if (Peek() == ',') {
            ++pos_;
            continue;
          }
          if (Peek() == '}') {
            ++pos_;
            return true;
          }
          return false;
        }
    }

    bool Array()
    {
        ++pos_;  // '['
        SkipWs();
        if (Peek() == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          SkipWs();
          if (!Value()) {
            return false;
          }
          SkipWs();
          if (Peek() == ',') {
            ++pos_;
            continue;
          }
          if (Peek() == ']') {
            ++pos_;
            return true;
          }
          return false;
        }
    }

    bool String()
    {
        if (Peek() != '"') {
          return false;
        }
        ++pos_;
        while (pos_ < text_.size()) {
          const char ch = text_[pos_];
          if (ch == '\\') {
            pos_ += 2;
            continue;
          }
          if (ch == '"') {
            ++pos_;
            return true;
          }
          ++pos_;
        }
        return false;
    }

    bool Number()
    {
        const std::size_t start = pos_;
        if (Peek() == '-') {
          ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) !=
                    0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
          ++pos_;
        }
        return pos_ > start;
    }

    bool Literal(const char* word)
    {
        const std::string w(word);
        if (text_.compare(pos_, w.size(), w) != 0) {
          return false;
        }
        pos_ += w.size();
        return true;
    }

    char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void SkipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
          ++pos_;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

// --------------------------------------------------------------- stats

TEST(StatRegistryTest, OwnedCountersIncrementAndDump)
{
  StatRegistry reg;
  StatCounter* c = reg.AddCounter("sim.widgets", "widgets made");
  c->Inc();
  c->Add(4);
  EXPECT_EQ(c->Value(), 5u);
  EXPECT_EQ(reg.Value("sim.widgets"), 5.0);
  EXPECT_NE(reg.DumpText().find("sim.widgets 5"), std::string::npos);
}

TEST(StatRegistryTest, BoundCounterReadsLiveValue)
{
  std::uint64_t field = 0;
  StatRegistry reg;
  reg.BindCounter("a.b", "external field", &field);
  EXPECT_EQ(reg.Value("a.b"), 0.0);
  field = 42;
  EXPECT_EQ(reg.Value("a.b"), 42.0);
}

TEST(StatRegistryTest, DerivedEvaluatesAtDumpTime)
{
  StatRegistry reg;
  double x = 1.0;
  reg.BindDerived("rate", "live ratio", [&x] { return x; });
  EXPECT_EQ(reg.Value("rate"), 1.0);
  x = 0.5;
  EXPECT_EQ(reg.Value("rate"), 0.5);
}

TEST(StatRegistryTest, GaugeHoldsPointInTimeValue)
{
  StatRegistry reg;
  StatGauge* g = reg.AddGauge("queue.depth", "current depth");
  g->Set(7.5);
  EXPECT_EQ(reg.Value("queue.depth"), 7.5);
}

TEST(StatRegistryTest, DuplicateNameDies)
{
  StatRegistry reg;
  reg.AddCounter("x.y", "");
  EXPECT_DEATH(reg.AddCounter("x.y", ""), "duplicate");
}

TEST(StatRegistryTest, MalformedNamesDie)
{
  StatRegistry reg;
  EXPECT_DEATH(reg.AddCounter("Bad.Name", ""), "malformed");
  EXPECT_DEATH(reg.AddCounter(".leading", ""), "malformed");
  EXPECT_DEATH(reg.AddCounter("trailing.", ""), "malformed");
  EXPECT_DEATH(reg.AddCounter("two..dots", ""), "malformed");
  EXPECT_DEATH(reg.AddCounter("spa ce", ""), "malformed");
}

TEST(StatRegistryTest, UnknownNameDies)
{
  StatRegistry reg;
  EXPECT_DEATH(reg.Value("nope"), "unknown stat");
}

TEST(StatRegistryTest, NamesAreSortedAndGrouped)
{
  StatRegistry reg;
  reg.AddCounter("lut.b", "");
  reg.AddCounter("sim.a", "");
  reg.AddCounter("lut.a", "");
  const auto names = reg.Names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "lut.a");
  EXPECT_EQ(names[1], "lut.b");
  EXPECT_EQ(names[2], "sim.a");
  EXPECT_EQ(reg.Group("lut.").size(), 2u);
  EXPECT_EQ(reg.Group("sim.").size(), 1u);
  EXPECT_TRUE(reg.Group("dram.").empty());
}

TEST(StatRegistryTest, HistogramStatExpandsInSnapshot)
{
  StatRegistry reg;
  Histogram* h = reg.AddHistogram("lat", "latency", 0.0, 10.0, 10);
  h->Add(1.0);
  h->Add(2.0);
  h->Add(3.0);
  const auto snap = reg.Snapshot();
  EXPECT_EQ(snap.at("lat.count"), 3.0);
  EXPECT_DOUBLE_EQ(snap.at("lat.mean"), 2.0);
  EXPECT_EQ(snap.at("lat.min"), 1.0);
  EXPECT_EQ(snap.at("lat.max"), 3.0);
  EXPECT_DEATH(reg.Value("lat"), "histogram");
}

TEST(StatRegistryTest, DumpParsesBackAndDiffs)
{
  StatRegistry reg;
  StatCounter* c = reg.AddCounter("a.count", "first");
  reg.AddCounter("b.count", "second");
  c->Add(3);
  const auto before = StatRegistry::ParseDump(reg.DumpText(true));
  EXPECT_EQ(before.at("a.count"), 3.0);
  EXPECT_EQ(before.at("b.count"), 0.0);

  c->Add(2);
  const auto after = reg.Snapshot();
  const std::string diff = StatRegistry::DiffSnapshots(before, after);
  EXPECT_NE(diff.find("a.count 3 -> 5"), std::string::npos);
  EXPECT_EQ(diff.find("b.count"), std::string::npos);  // unchanged
  EXPECT_TRUE(StatRegistry::DiffSnapshots(after, after).empty());
}

TEST(StatRegistryTest, DiffReportsOneSidedNames)
{
  const std::map<std::string, double> a = {{"x", 1.0}};
  const std::map<std::string, double> b = {{"y", 2.0}};
  const std::string diff = StatRegistry::DiffSnapshots(a, b);
  EXPECT_NE(diff.find("x only in first"), std::string::npos);
  EXPECT_NE(diff.find("y only in second"), std::string::npos);
}

TEST(StatRegistryTest, JsonAndCsvDumpsAreWellFormed)
{
  StatRegistry reg;
  reg.AddCounter("a.b", "desc");
  reg.BindDerived("c.d", "", [] { return 1.5; });
  EXPECT_TRUE(JsonChecker(reg.DumpJson()).Valid());
  const std::string csv = reg.DumpCsv();
  EXPECT_EQ(csv.find("name,value\n"), 0u);
  EXPECT_NE(csv.find("c.d,1.5"), std::string::npos);
}

// --------------------------------------------------------------- trace

TEST(TraceSessionTest, RecordsAndExportsEvents)
{
  TraceSession t;
  t.Complete(TraceCategory::kStep, "step", 100, 50);
  t.Instant(TraceCategory::kLut, "miss", 120, 3);
  t.CounterSample(TraceCategory::kCounter, "depth", 130, 2.5);
  EXPECT_EQ(t.Size(), 3u);
  const std::string json = t.ToChromeJson(1.0);
  EXPECT_TRUE(JsonChecker(json).Valid());
  EXPECT_NE(json.find("\"name\":\"step\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":2.5"), std::string::npos);
}

TEST(TraceSessionTest, CategoryMaskFilters)
{
  TraceSession t(static_cast<std::uint32_t>(TraceCategory::kStep));
  EXPECT_TRUE(t.Enabled(TraceCategory::kStep));
  EXPECT_FALSE(t.Enabled(TraceCategory::kLut));
  t.Complete(TraceCategory::kStep, "kept", 0, 1);
  t.Instant(TraceCategory::kLut, "dropped", 0);
  EXPECT_EQ(t.Size(), 1u);
  EXPECT_EQ(t.Events()[0].name, std::string("kept"));
}

TEST(TraceSessionTest, ParseTraceCategoriesMasks)
{
  EXPECT_EQ(ParseTraceCategories("all"), kTraceAllCategories);
  EXPECT_EQ(ParseTraceCategories("none"), 0u);
  const std::uint32_t mask = ParseTraceCategories("step,dram");
  EXPECT_NE(mask & static_cast<std::uint32_t>(TraceCategory::kStep), 0u);
  EXPECT_NE(mask & static_cast<std::uint32_t>(TraceCategory::kDram), 0u);
  EXPECT_EQ(mask & static_cast<std::uint32_t>(TraceCategory::kLut), 0u);
  EXPECT_DEATH(ParseTraceCategories("bogus"), "unknown trace category");
}

TEST(TraceSessionTest, RingKeepsNewestAndCountsDropped)
{
  TraceSession t(kTraceAllCategories, 4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.Complete(TraceCategory::kStep, "e", i, 1);
  }
  EXPECT_EQ(t.Size(), 4u);
  EXPECT_EQ(t.Dropped(), 6u);
  const auto events = t.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first export of the newest four timestamps.
  EXPECT_EQ(events.front().ts, 6u);
  EXPECT_EQ(events.back().ts, 9u);
  const std::string json = t.ToChromeJson(1.0);
  EXPECT_TRUE(JsonChecker(json).Valid());
  EXPECT_NE(json.find("\"dropped_events\":6"), std::string::npos);
}

TEST(TraceSessionTest, ExactFillDropsNothing)
{
  // Filling the ring to exactly its capacity must not count a drop or
  // rotate the export order.
  TraceSession t(kTraceAllCategories, 4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    t.Complete(TraceCategory::kStep, "e", i, 1);
  }
  EXPECT_EQ(t.Size(), 4u);
  EXPECT_EQ(t.Dropped(), 0u);
  const auto events = t.Events();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].ts, i);
  }
  const std::string json = t.ToChromeJson(1.0);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

TEST(TraceSessionTest, MultipleWrapsKeepTheLatestWindow)
{
  // The ring survives wrapping several times over: only the newest
  // `capacity` events remain, oldest first, and the drop counter keeps
  // the full tally.
  TraceSession t(kTraceAllCategories, 3);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.Instant(TraceCategory::kStep, "e", i);
  }
  EXPECT_EQ(t.Size(), 3u);
  EXPECT_EQ(t.Dropped(), 7u);
  auto events = t.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ts, 7u);
  EXPECT_EQ(events[2].ts, 9u);

  t.Instant(TraceCategory::kStep, "e", 10);
  t.Instant(TraceCategory::kStep, "e", 11);
  EXPECT_EQ(t.Dropped(), 9u);
  events = t.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ts, 9u);
  EXPECT_EQ(events[2].ts, 11u);
}

TEST(TraceSessionTest, CapacityOneRingHoldsOnlyTheNewest)
{
  TraceSession t(kTraceAllCategories, 1);
  t.Instant(TraceCategory::kStep, "a", 0);
  t.Instant(TraceCategory::kStep, "b", 1);
  t.Instant(TraceCategory::kStep, "c", 2);
  EXPECT_EQ(t.Size(), 1u);
  EXPECT_EQ(t.Dropped(), 2u);
  auto events = t.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts, 2u);
  EXPECT_STREQ(events[0].name, "c");

  // Clear rewinds the wrap state too: the next event is a fresh ring.
  t.Clear();
  t.Instant(TraceCategory::kStep, "d", 5);
  EXPECT_EQ(t.Size(), 1u);
  EXPECT_EQ(t.Dropped(), 0u);
  events = t.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts, 5u);
}

TEST(TraceSessionTest, ClearResets)
{
  TraceSession t(kTraceAllCategories, 2);
  t.Complete(TraceCategory::kStep, "e", 0, 1);
  t.Complete(TraceCategory::kStep, "e", 1, 1);
  t.Complete(TraceCategory::kStep, "e", 2, 1);
  t.Clear();
  EXPECT_EQ(t.Size(), 0u);
  EXPECT_EQ(t.Dropped(), 0u);
  EXPECT_TRUE(JsonChecker(t.ToChromeJson()).Valid());
}

// ------------------------------------------------------------ profiler

TEST(ProfilerTest, DisabledZonesRecordNothing)
{
  Profiler& prof = Profiler::Instance();
  prof.Enable(false);
  prof.Reset();
  const int id = prof.RegisterZone("test.disabled");
  {
    ProfScope scope(id);
  }
  EXPECT_EQ(prof.Calls(id), 0u);
}

TEST(ProfilerTest, EnabledZonesAccumulate)
{
  Profiler& prof = Profiler::Instance();
  prof.Reset();
  prof.Enable(true);
  const int id = prof.RegisterZone("test.enabled");
  for (int i = 0; i < 3; ++i) {
    ProfScope scope(id);
  }
  prof.Enable(false);
  EXPECT_EQ(prof.Calls(id), 3u);
  const std::string report = prof.Report();
  EXPECT_NE(report.find("test.enabled"), std::string::npos);
  EXPECT_NE(report.find("calls"), std::string::npos);
}

TEST(ProfilerTest, EmptyReportExplainsItself)
{
  Profiler& prof = Profiler::Instance();
  prof.Enable(false);
  prof.Reset();
  EXPECT_NE(prof.Report().find("no zones recorded"), std::string::npos);
}

// ----------------------------------------------- end-to-end (arch sim)

SolverProgram
SmallHeatProgram()
{
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  const auto model = MakeModel("heat", mc);
  return MakeProgram(*model);
}

TEST(ObsIntegrationTest, TracedRunMatchesUntracedRun)
{
  const SolverProgram program = SmallHeatProgram();
  const ArchConfig config = RecommendedArchConfig(program);

  ArchSimulator plain(program, config);
  plain.Run(8);

  TraceSession trace(kTraceAllCategories, 1 << 14);
  ArchSimulator traced(program, config);
  traced.AttachTrace(&trace);
  traced.Run(8);

  const SimReport& a = plain.Report();
  const SimReport& b = traced.Report();
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.compute_cycles, b.compute_cycles);
  EXPECT_EQ(a.stall_l2_cycles, b.stall_l2_cycles);
  EXPECT_EQ(a.stall_dram_cycles, b.stall_dram_cycles);
  EXPECT_EQ(a.memory_cycles, b.memory_cycles);
  EXPECT_EQ(a.activity.mac_ops, b.activity.mac_ops);
  EXPECT_EQ(a.activity.tum_evals, b.activity.tum_evals);
  EXPECT_EQ(a.activity.l1_accesses, b.activity.l1_accesses);
  EXPECT_EQ(a.activity.l1_misses, b.activity.l1_misses);
  EXPECT_EQ(a.activity.l2_misses, b.activity.l2_misses);
  EXPECT_EQ(a.activity.lut_dram_fetches, b.activity.lut_dram_fetches);
  EXPECT_EQ(plain.StateDoubles(0), traced.StateDoubles(0));

  EXPECT_GT(trace.Size(), 0u);
  EXPECT_TRUE(JsonChecker(trace.ToChromeJson(600.0)).Valid());
}

TEST(ObsIntegrationTest, RegistryMatchesReportAndStatsLines)
{
  const SolverProgram program = SmallHeatProgram();
  const ArchConfig config = RecommendedArchConfig(program);
  ArchSimulator sim(program, config);
  sim.Run(5);

  StatRegistry reg;
  sim.RegisterStats(&reg);
  const SimReport& report = sim.Report();
  EXPECT_EQ(reg.Value("sim.steps"), static_cast<double>(report.steps));
  EXPECT_EQ(reg.Value("sim.total_cycles"),
            static_cast<double>(report.total_cycles));
  EXPECT_EQ(reg.Value("pe.mac_ops"),
            static_cast<double>(report.activity.mac_ops));
  EXPECT_EQ(reg.Value("lut.l1.miss_rate"), report.activity.L1MissRate());

  // ToStatsLines is a registry dump: it must parse and agree.
  const auto parsed =
      StatRegistry::ParseDump(report.ToStatsLines(600e6));
  EXPECT_EQ(parsed.at("sim.steps"), 5.0);
  EXPECT_EQ(parsed.at("pe.mac_ops"),
            static_cast<double>(report.activity.mac_ops));
  EXPECT_GE(parsed.size(), 20u);
}

TEST(ObsIntegrationTest, MaskedOutLutCategoryCostsNoEvents)
{
  const SolverProgram program = SmallHeatProgram();
  ArchConfig config = RecommendedArchConfig(program);
  config.lut_for_polynomials = true;  // force LUT traffic
  TraceSession trace(
      static_cast<std::uint32_t>(TraceCategory::kStep));
  ArchSimulator sim(program, config);
  sim.AttachTrace(&trace);
  sim.Run(3);
  for (const TraceEvent& e : trace.Events()) {
    EXPECT_EQ(static_cast<std::uint32_t>(e.cat),
              static_cast<std::uint32_t>(TraceCategory::kStep));
  }
  EXPECT_EQ(trace.Size(), 3u);  // exactly one span per step
}

// ------------------------------------------------------------ stats io

TEST(StatsIoTest, JsonEscapeHandlesSpecialsAndControls)
{
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape("line\nfeed"), "line\\nfeed");
  EXPECT_EQ(JsonEscape("cr\rlf"), "cr\\rlf");
  EXPECT_EQ(JsonEscape(std::string("nul\x01" "byte")), "nul\\u0001byte");
  // A fully escaped string embeds into a JSON document cleanly.
  const std::string hostile = "q\"b\\c\nd\te\x02" "f";
  EXPECT_TRUE(
      JsonChecker("{\"k\":\"" + JsonEscape(hostile) + "\"}").Valid());
}

// ------------------------------------------------------ metrics emitter

namespace {

/** Pulls the number following `"name":` out of one JSONL line. */
double
FieldValue(const std::string& line, const std::string& name)
{
  const std::string key = "\"" + name + "\":";
  const auto at = line.find(key);
  EXPECT_NE(at, std::string::npos) << name << " missing in: " << line;
  if (at == std::string::npos) {
    return -1.0;
  }
  return std::strtod(line.c_str() + at + key.size(), nullptr);
}

}  // namespace

TEST(MetricsEmitterTest, JsonlRoundTrip)
{
  const std::string path = "metrics_roundtrip_test.jsonl";
  StatRegistry reg;
  StatCounter* work = reg.AddCounter("m.work", "units of work");
  StatGauge* level = reg.AddGauge("m.level", "current level");

  {
    MetricsOptions options;
    options.path = path;
    options.interval_ms = 10000;  // ticks never fire; samples forced
    MetricsEmitter emitter(&reg, options);
    ASSERT_TRUE(emitter.Start());
    EXPECT_TRUE(emitter.Running());
    work->Add(5);
    level->Set(1.5);
    emitter.SampleNow("pause");
    work->Add(7);
    level->Set(-0.5);
    emitter.SampleNow("resume");
    emitter.Stop();
    EXPECT_FALSE(emitter.Running());
    EXPECT_EQ(emitter.SamplesWritten(), 4u);  // start,pause,resume,exit
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);

  double prev_work = 0.0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    SCOPED_TRACE(lines[i]);
    EXPECT_TRUE(JsonChecker(lines[i]).Valid());
    EXPECT_NE(lines[i].find("\"schema\":\"cenn.metrics.v1\""),
              std::string::npos);
    EXPECT_EQ(FieldValue(lines[i], "seq"), static_cast<double>(i));
    // Counters are monotone; each delta is the increase.
    const double work_now = FieldValue(lines[i], "m.work");
    EXPECT_GE(work_now, prev_work);
    const auto deltas_at = lines[i].find("\"deltas\"");
    ASSERT_NE(deltas_at, std::string::npos);
    EXPECT_EQ(FieldValue(lines[i].substr(deltas_at), "m.work"),
              work_now - prev_work);
    prev_work = work_now;
  }
  EXPECT_NE(lines.front().find("\"reason\":\"start\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"reason\":\"pause\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"reason\":\"exit\""), std::string::npos);
  // The forced samples observed the live values.
  EXPECT_EQ(FieldValue(lines[1], "m.work"), 5.0);
  EXPECT_EQ(FieldValue(lines[2], "m.work"), 12.0);
  EXPECT_EQ(FieldValue(lines[2], "m.level"), -0.5);
  std::remove(path.c_str());
}

TEST(MetricsEmitterTest, IntervalTicksProduceSamples)
{
  const std::string path = "metrics_interval_test.jsonl";
  StatRegistry reg;
  reg.AddCounter("m.ticks", "");
  MetricsOptions options;
  options.path = path;
  options.interval_ms = 1;
  MetricsEmitter emitter(&reg, options);
  ASSERT_TRUE(emitter.Start());
  while (emitter.SamplesWritten() < 5) {
    std::this_thread::yield();
  }
  emitter.Stop();
  std::ifstream in(path);
  std::size_t n = 0;
  for (std::string line; std::getline(in, line); ++n) {
    EXPECT_TRUE(JsonChecker(line).Valid());
  }
  EXPECT_GE(n, 6u);  // start + >=5 ticks observed + exit
  std::remove(path.c_str());
}

TEST(MetricsEmitterTest, UnopenablePathFailsStart)
{
  StatRegistry reg;
  MetricsOptions options;
  options.path = "no_such_dir_xyz/metrics.jsonl";
  MetricsEmitter emitter(&reg, options);
  EXPECT_FALSE(emitter.Start());
  EXPECT_FALSE(emitter.Running());
  emitter.Stop();  // idempotent no-op
}

// -------------------------------------------- trace thread-name events

TEST(TraceSessionTest, ThreadNameMetadataEmittedFirst)
{
  TraceSession t;
  t.Complete(TraceCategory::kStep, "step", 100, 50, /*lane=*/1);
  t.SetThreadName(1, "shard1");
  t.SetThreadName(2, "publish");
  const std::string json = t.ToChromeJson(1.0);
  EXPECT_TRUE(JsonChecker(json).Valid());
  const auto meta_at = json.find("\"ph\":\"M\"");
  const auto span_at = json.find("\"ph\":\"X\"");
  ASSERT_NE(meta_at, std::string::npos);
  ASSERT_NE(span_at, std::string::npos);
  EXPECT_LT(meta_at, span_at);  // metadata precedes the spans
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"publish\""), std::string::npos);
}

// --------------------------------------------- profiler thread merging

TEST(ProfilerTest, MergesZoneTotalsAcrossThreads)
{
  Profiler& prof = Profiler::Instance();
  prof.Reset();
  prof.Enable(true);
  const int id = prof.RegisterZone("test.threads");
  constexpr int kThreads = 3;
  constexpr int kCallsEach = 40;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([id] {
      for (int i = 0; i < kCallsEach; ++i) {
        ProfScope scope(id);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  prof.Enable(false);
  // Dead threads' tables are retired, not lost: the merged totals see
  // every call even though the workers are gone.
  EXPECT_EQ(prof.Calls(id), static_cast<std::uint64_t>(kThreads) *
                                static_cast<std::uint64_t>(kCallsEach));
  EXPECT_NE(prof.Report().find("test.threads"), std::string::npos);
}

}  // namespace
}  // namespace cenn
