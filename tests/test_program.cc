/**
 * @file
 * Programming-model tests: bitstream round trips (geometry, templates,
 * WUI matrices, factors, offsets, resets, LUT config), quantization
 * contract, hardware-limit enforcement, corruption detection, field
 * data streams and the function registry.
 */

#include <gtest/gtest.h>

#include "mapping/mapper.h"
#include "models/benchmark_model.h"
#include "program/bitstream.h"

namespace cenn {
namespace {

/** Structural + quantized-value equality of two specs. */
void
ExpectSpecsEquivalent(const NetworkSpec& a, const NetworkSpec& b)
{
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.cols, b.cols);
  EXPECT_EQ(a.boundary.kind, b.boundary.kind);
  EXPECT_DOUBLE_EQ(a.dt, b.dt);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    const LayerSpec& la = a.layers[l];
    const LayerSpec& lb = b.layers[l];
    EXPECT_EQ(la.name, lb.name);
    EXPECT_EQ(la.has_self_decay, lb.has_self_decay);
    EXPECT_DOUBLE_EQ(QuantizeWeight(la.z), lb.z);
    ASSERT_EQ(la.couplings.size(), lb.couplings.size());
    for (std::size_t c = 0; c < la.couplings.size(); ++c) {
      const Coupling& ca = la.couplings[c];
      const Coupling& cb = lb.couplings[c];
      EXPECT_EQ(ca.kind, cb.kind);
      EXPECT_EQ(ca.src_layer, cb.src_layer);
      ASSERT_EQ(ca.kernel.Side(), cb.kernel.Side());
      const auto& ea = ca.kernel.Entries();
      const auto& eb = cb.kernel.Entries();
      for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_DOUBLE_EQ(QuantizeWeight(ea[i].constant), eb[i].constant)
            << "layer " << l << " coupling " << c << " entry " << i;
        ASSERT_EQ(ea[i].factors.size(), eb[i].factors.size());
        for (std::size_t f = 0; f < ea[i].factors.size(); ++f) {
          EXPECT_EQ(ea[i].factors[f].ctrl_layer,
                    eb[i].factors[f].ctrl_layer);
          EXPECT_EQ(ea[i].factors[f].at_source, eb[i].factors[f].at_source);
          EXPECT_EQ(ea[i].factors[f].fn->Name(),
                    eb[i].factors[f].fn->Name());
        }
      }
    }
    ASSERT_EQ(la.offset_terms.size(), lb.offset_terms.size());
  }
  ASSERT_EQ(a.resets.size(), b.resets.size());
  for (std::size_t r = 0; r < a.resets.size(); ++r) {
    EXPECT_EQ(a.resets[r].trigger_layer, b.resets[r].trigger_layer);
    EXPECT_DOUBLE_EQ(QuantizeWeight(a.resets[r].threshold),
                     b.resets[r].threshold);
    ASSERT_EQ(a.resets[r].actions.size(), b.resets[r].actions.size());
  }
}

class BitstreamRoundTripTest : public ::testing::TestWithParam<const char*>
{
};

TEST_P(BitstreamRoundTripTest, ModelProgramSurvivesRoundTrip)
{
  ModelConfig config;
  config.rows = 32;
  config.cols = 32;
  const auto model = MakeModel(GetParam(), config);
  const SolverProgram program = MakeProgram(*model);

  const std::vector<std::uint8_t> bits = SerializeProgram(program);
  FunctionRegistry registry;
  registry.RegisterAll(program.spec);
  const SolverProgram loaded = DeserializeProgram(bits, registry);

  ExpectSpecsEquivalent(program.spec, loaded.spec);
  EXPECT_EQ(program.lut_config.per_function.size(),
            loaded.lut_config.per_function.size());
  for (const auto& [name, spec] : program.lut_config.per_function) {
    const auto it = loaded.lut_config.per_function.find(name);
    ASSERT_NE(it, loaded.lut_config.per_function.end()) << name;
    EXPECT_DOUBLE_EQ(spec.min_p, it->second.min_p);
    EXPECT_DOUBLE_EQ(spec.max_p, it->second.max_p);
    EXPECT_EQ(spec.frac_index_bits, it->second.frac_index_bits);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, BitstreamRoundTripTest,
                         ::testing::Values("heat", "navier_stokes", "fisher",
                                           "reaction_diffusion",
                                           "hodgkin_huxley", "izhikevich",
                                           "gray_scott"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(BitstreamTest, DoubleSerializationIsIdempotent)
{
  ModelConfig config;
  config.rows = 16;
  config.cols = 16;
  const auto model = MakeModel("izhikevich", config);
  const SolverProgram program = MakeProgram(*model);
  FunctionRegistry registry;
  registry.RegisterAll(program.spec);

  const auto bits1 = SerializeProgram(program);
  const SolverProgram once = DeserializeProgram(bits1, registry);
  const auto bits2 = SerializeProgram(once);
  // After one quantizing round trip the stream is a fixed point.
  EXPECT_EQ(bits1.size(), bits2.size());
  const SolverProgram twice = DeserializeProgram(bits2, registry);
  ExpectSpecsEquivalent(once.spec, twice.spec);
}

TEST(BitstreamTest, NonPowerOfTwoGridDies)
{
  SolverProgram program;
  program.spec.rows = 24;
  program.spec.cols = 32;
  program.spec.layers.emplace_back();
  EXPECT_DEATH(SerializeProgram(program), "power-of-two");
}

TEST(BitstreamTest, TooManyLayersDies)
{
  SolverProgram program;
  program.spec.rows = 8;
  program.spec.cols = 8;
  program.spec.layers.resize(9);  // 3-bit N_layer field
  EXPECT_DEATH(SerializeProgram(program), "3 bits");
}

TEST(BitstreamTest, CorruptionDetected)
{
  ModelConfig config;
  config.rows = 8;
  config.cols = 8;
  const auto model = MakeModel("heat", config);
  const SolverProgram program = MakeProgram(*model);
  auto bits = SerializeProgram(program);
  FunctionRegistry registry;
  bits[bits.size() / 2] ^= 0xff;
  EXPECT_DEATH(DeserializeProgram(bits, registry), "checksum");
}

TEST(BitstreamTest, TruncationDetected)
{
  ModelConfig config;
  config.rows = 8;
  config.cols = 8;
  const auto model = MakeModel("heat", config);
  auto bits = SerializeProgram(MakeProgram(*model));
  bits.resize(bits.size() / 2);
  FunctionRegistry registry;
  EXPECT_DEATH(DeserializeProgram(bits, registry), "checksum|truncated");
}

TEST(BitstreamTest, RandomCorruptionAlwaysDetectedOrParsed)
{
  // Flip one byte at several positions: every mutation must be caught
  // by the checksum (clean death), never silently mis-parsed into a
  // different valid program.
  ModelConfig config;
  config.rows = 8;
  config.cols = 8;
  const auto model = MakeModel("izhikevich", config);
  const auto bits = SerializeProgram(MakeProgram(*model));
  FunctionRegistry registry;
  registry.RegisterAll(MakeProgram(*model).spec);
  for (std::size_t pos : {std::size_t{6}, bits.size() / 4, bits.size() / 2,
                          bits.size() * 3 / 4, bits.size() - 6}) {
    auto mutated = bits;
    mutated[pos] ^= 0x40;
    EXPECT_DEATH(DeserializeProgram(mutated, registry), "checksum|magic")
        << "at byte " << pos;
  }
}

TEST(BitstreamTest, BadMagicDies)
{
  std::vector<std::uint8_t> bits(16, 0);
  // Fix the checksum so we reach the magic check.
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 4 < bits.size(); ++i) {
    sum += bits[i];
  }
  bits[12] = static_cast<std::uint8_t>(sum);
  FunctionRegistry registry;
  EXPECT_DEATH(DeserializeProgram(bits, registry), "magic");
}

TEST(BitstreamTest, UnknownFunctionNameDies)
{
  ModelConfig config;
  config.rows = 8;
  config.cols = 8;
  const auto model = MakeModel("fisher", config);
  const auto bits = SerializeProgram(MakeProgram(*model));
  FunctionRegistry empty;
  EXPECT_DEATH(DeserializeProgram(bits, empty), "unknown function");
}

TEST(BitstreamTest, QuantizeWeightMatchesFixed32)
{
  EXPECT_DOUBLE_EQ(QuantizeWeight(1.5), 1.5);
  const double v = 0.1;  // not representable in Q16.16
  EXPECT_NE(QuantizeWeight(v), v);
  EXPECT_NEAR(QuantizeWeight(v), v, Fixed32::Epsilon());
}

TEST(BitstreamTest, FieldRoundTripQuantized)
{
  const std::vector<double> field = {0.0, 1.5, -2.25, 100.125, -0.1};
  const auto bytes = SerializeField(field);
  const auto back = DeserializeField(bytes);
  ASSERT_EQ(back.size(), field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    EXPECT_NEAR(back[i], field[i], Fixed32::Epsilon());
    EXPECT_DOUBLE_EQ(back[i], QuantizeWeight(field[i]));
  }
}

TEST(FunctionRegistryTest, RegisterFindGet)
{
  FunctionRegistry registry;
  const auto fn = NonlinearFunction::Polynomial("sq", {0, 0, 1});
  registry.Register(fn);
  registry.Register(fn);  // same pointer: fine
  EXPECT_EQ(registry.Size(), 1u);
  EXPECT_EQ(registry.Find("sq").get(), fn.get());
  EXPECT_EQ(registry.Find("missing"), nullptr);
  EXPECT_DEATH(registry.Get("missing"), "unknown function");
}

TEST(FunctionRegistryTest, NameCollisionDies)
{
  FunctionRegistry registry;
  registry.Register(NonlinearFunction::Polynomial("f", {0, 1}));
  EXPECT_DEATH(registry.Register(NonlinearFunction::Polynomial("f", {1})),
               "collision");
}

TEST(FunctionRegistryTest, RegisterAllFindsEveryFunction)
{
  ModelConfig config;
  config.rows = 8;
  config.cols = 8;
  const auto model = MakeModel("hodgkin_huxley", config);
  FunctionRegistry registry;
  registry.RegisterAll(model->System().equations.empty()
                           ? NetworkSpec{}
                           : Mapper::Map(model->System()));
  // HH uses cube, identity, quartic and six rate functions.
  EXPECT_EQ(registry.Size(), 9u);
}

}  // namespace
}  // namespace cenn
