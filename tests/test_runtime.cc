/**
 * @file
 * Runtime subsystem tests: deterministic job queue and pool, sharded
 * execution determinism (bit-identical to serial for every worker
 * count), session lifecycle with checkpoint/resume, RNG stream
 * splitting, stat scoping, and batch resume semantics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <tuple>
#include <vector>

#include "health/health_guard.h"
#include "kernels/soa_engine.h"
#include "lut/lut_refit.h"
#include "lut/lut_store.h"
#include "mapping/mapper.h"
#include "models/benchmark_model.h"
#include "obs/stat_registry.h"
#include "obs/trace.h"
#include "runtime/batch_manifest.h"
#include "runtime/batch_runner.h"
#include "runtime/engine_factory.h"
#include "runtime/job_queue.h"
#include "runtime/sharded_stepper.h"
#include "runtime/solver_session.h"
#include "runtime/thread_pool.h"
#include "runtime/worker_team.h"
#include "util/rng.h"

namespace cenn {
namespace {

NetworkSpec
ModelSpec(const std::string& name, std::size_t rows, std::size_t cols)
{
  ModelConfig mc;
  mc.rows = rows;
  mc.cols = cols;
  return Mapper::Map(MakeModel(name, mc)->System());
}

SolverOptions
Opts(Precision precision)
{
  SolverOptions options;
  options.precision = precision;
  return options;
}

/** Fresh per-test scratch directory under the gtest temp root. */
std::string
ScratchDir(const std::string& tag)
{
  const std::string dir = testing::TempDir() + "cenn_runtime_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// JobQueue

TEST(JobQueueTest, DispatchesFifoWithinPriority)
{
  JobQueue queue(16);
  std::vector<int> order;
  queue.Push([&order] { order.push_back(1); });
  queue.Push([&order] { order.push_back(2); });
  queue.Push([&order] { order.push_back(3); }, /*priority=*/5);
  queue.Push([&order] { order.push_back(4); }, /*priority=*/5);
  queue.Close();
  while (auto job = queue.Pop()) {
    job->fn();
  }
  EXPECT_EQ(order, (std::vector<int>{3, 4, 1, 2}));
  EXPECT_EQ(queue.TotalPushed(), 4u);
  EXPECT_EQ(queue.TotalPopped(), 4u);
}

TEST(JobQueueTest, TryPushFailsWhenFull)
{
  JobQueue queue(2);
  EXPECT_TRUE(queue.TryPush([] {}));
  EXPECT_TRUE(queue.TryPush([] {}));
  JobId id = 0;
  EXPECT_FALSE(queue.TryPush([] {}, 0, &id));
  EXPECT_EQ(queue.Size(), 2u);
}

TEST(JobQueueTest, PushBlocksUntilPopMakesRoom)
{
  JobQueue queue(1);
  queue.Push([] {});
  std::atomic<bool> second_accepted{false};
  std::thread producer([&] {
    queue.Push([] {});  // blocks until the consumer pops
    second_accepted.store(true);
  });
  // Give the producer time to hit the full queue.
  while (queue.TotalBackpressureBlocks() == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(second_accepted.load());
  EXPECT_TRUE(queue.Pop().has_value());
  producer.join();
  EXPECT_TRUE(second_accepted.load());
  EXPECT_EQ(queue.TotalBackpressureBlocks(), 1u);
}

TEST(JobQueueTest, CancelRemovesPendingJob)
{
  JobQueue queue(8);
  const JobId keep = queue.Push([] {});
  const JobId drop = queue.Push([] {});
  EXPECT_TRUE(queue.Cancel(drop));
  EXPECT_FALSE(queue.Cancel(drop));   // already gone
  EXPECT_FALSE(queue.Cancel(12345));  // never existed
  EXPECT_EQ(queue.Size(), 1u);
  const auto job = queue.Pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->id, keep);
}

TEST(JobQueueTest, PopDrainsThenSignalsClosed)
{
  JobQueue queue(4);
  queue.Push([] {});
  queue.Close();
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_TRUE(queue.Closed());
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsSubmittedJobsAndWaitsIdle)
{
  ThreadPool pool({.num_threads = 3, .queue_capacity = 32});
  std::atomic<int> sum{0};
  for (int i = 1; i <= 20; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.WaitIdle();
  EXPECT_EQ(sum.load(), 210);
  EXPECT_EQ(pool.JobsCompleted(), 20u);
  EXPECT_EQ(pool.JobsDiscarded(), 0u);
}

TEST(ThreadPoolTest, ShutdownDiscardPendingNeverLosesAccounting)
{
  ThreadPool pool({.num_threads = 1, .queue_capacity = 64});
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Occupy the single worker so the rest stays queued.
  pool.Submit([&] {
    while (!release.load()) {
      std::this_thread::yield();
    }
    ran.fetch_add(1);
  });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  release.store(true);
  pool.Shutdown(ThreadPool::ShutdownMode::kDiscardPending);
  // The running job always completes; pending ones may have started
  // before the shutdown raced in, but nothing is both run and counted
  // discarded, and nothing is lost.
  EXPECT_EQ(pool.JobsCompleted() + pool.JobsDiscarded(), 11u);
  EXPECT_EQ(static_cast<int>(pool.JobsCompleted()), ran.load());
  // Idempotent.
  pool.Shutdown(ThreadPool::ShutdownMode::kDrain);
}

TEST(ThreadPoolTest, CancelPendingJob)
{
  ThreadPool pool({.num_threads = 1, .queue_capacity = 64});
  std::atomic<bool> release{false};
  std::atomic<bool> cancelled_ran{false};
  pool.Submit([&release] {
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  const JobId doomed =
      pool.Submit([&cancelled_ran] { cancelled_ran.store(true); });
  EXPECT_TRUE(pool.Cancel(doomed));
  release.store(true);
  pool.WaitIdle();
  EXPECT_FALSE(cancelled_ran.load());
  EXPECT_EQ(pool.JobsDiscarded(), 1u);
}

TEST(ThreadPoolTest, BindStatsPublishesPoolCounters)
{
  StatRegistry registry;
  ThreadPool pool({.num_threads = 2, .queue_capacity = 8});
  pool.BindStats(registry.WithPrefix("runtime.pool"));
  pool.Submit([] {});
  pool.WaitIdle();
  EXPECT_EQ(registry.Value("runtime.pool.threads"), 2.0);
  EXPECT_EQ(registry.Value("runtime.pool.jobs_submitted"), 1.0);
  EXPECT_EQ(registry.Value("runtime.pool.jobs_completed"), 1.0);
}

// ---------------------------------------------------------------------------
// Rng::Split

TEST(RngSplitTest, StreamsAreDeterministicAndIndependent)
{
  const Rng parent(7);
  Rng a0 = parent.Split(0);
  Rng a0_again = parent.Split(0);
  EXPECT_EQ(a0.NextU64(), a0_again.NextU64());
  // Distinct stream ids diverge immediately (overwhelmingly likely
  // for any non-degenerate mixing).
  Rng b0 = parent.Split(0);
  Rng b1 = parent.Split(1);
  EXPECT_NE(b0.NextU64(), b1.NextU64());
}

TEST(RngSplitTest, SplitDoesNotAdvanceParent)
{
  Rng witness(99);
  const std::uint64_t expected = witness.NextU64();
  Rng parent(99);
  (void)parent.Split(3);
  (void)parent.Split(4);
  EXPECT_EQ(parent.NextU64(), expected);
}

// ---------------------------------------------------------------------------
// StatScope

TEST(StatScopeTest, PrefixesAndNests)
{
  StatRegistry registry;
  StatScope scope = registry.WithPrefix("runtime.session1");
  scope.AddCounter("steps", "steps")->Add(5);
  StatScope nested = scope.WithPrefix("pool");
  nested.AddGauge("depth", "queue depth")->Set(3.5);
  EXPECT_TRUE(registry.Has("runtime.session1.steps"));
  EXPECT_TRUE(registry.Has("runtime.session1.pool.depth"));
  EXPECT_EQ(registry.Value("runtime.session1.steps"), 5.0);
  EXPECT_EQ(registry.Value("runtime.session1.pool.depth"), 3.5);
  EXPECT_EQ(scope.Prefix(), "runtime.session1.");
}

TEST(StatScopeTest, ConcurrentRegistrationIsSerialized)
{
  StatRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, t] {
      StatScope scope =
          registry.WithPrefix("runtime.session" + std::to_string(t));
      for (int i = 0; i < 25; ++i) {
        scope.AddCounter("c" + std::to_string(i), "counter")->Inc();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(registry.Size(), 100u);
}

// ---------------------------------------------------------------------------
// PartitionRows

TEST(PartitionRowsTest, CoversWithoutOverlap)
{
  for (std::size_t rows : {1u, 2u, 7u, 64u, 65u}) {
    for (int k : {1, 2, 4, 7, 100}) {
      const auto bands = PartitionRows(rows, k);
      ASSERT_FALSE(bands.empty());
      EXPECT_LE(bands.size(), std::min<std::size_t>(
                                  static_cast<std::size_t>(k), rows));
      std::size_t next = 0;
      for (const auto& [begin, end] : bands) {
        EXPECT_EQ(begin, next);
        EXPECT_LT(begin, end);
        next = end;
      }
      EXPECT_EQ(next, rows);
      // Balanced: band sizes differ by at most one row.
      std::size_t lo = rows;
      std::size_t hi = 0;
      for (const auto& [begin, end] : bands) {
        lo = std::min(lo, end - begin);
        hi = std::max(hi, end - begin);
      }
      EXPECT_LE(hi - lo, 1u);
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded execution determinism

class ShardedDeterminismTest
    : public testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(ShardedDeterminismTest, BitIdenticalToSerialDouble)
{
  const auto& [model, shards] = GetParam();
  const NetworkSpec spec = ModelSpec(model, 17, 16);

  DeSolver serial(spec, Opts(Precision::kDouble));
  serial.Run(40);

  DeSolver sharded(spec, Opts(Precision::kDouble));
  RunSharded(&sharded, 40, shards);

  EXPECT_EQ(sharded.Steps(), 40u);
  for (int l = 0; l < spec.NumLayers(); ++l) {
    const auto a = serial.StateDoubles(l);
    const auto b = sharded.StateDoubles(l);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      // Bit-identical, not approximately equal.
      ASSERT_EQ(a[i], b[i]) << model << " layer " << l << " cell " << i
                            << " with " << shards << " shards";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndWorkerCounts, ShardedDeterminismTest,
    testing::Combine(testing::Values("heat", "reaction_diffusion"),
                     testing::Values(1, 2, 4, 7)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ShardedDeterminismTest, BitIdenticalToSerialFixed32)
{
  const NetworkSpec spec = ModelSpec("reaction_diffusion", 16, 16);

  DeSolver serial(spec, Opts(Precision::kFixed32));
  serial.Run(40);

  DeSolver sharded(spec, Opts(Precision::kFixed32));
  RunSharded(&sharded, 40, 4);

  for (int l = 0; l < spec.NumLayers(); ++l) {
    const auto& a = serial.FixedEngine().State(l);
    const auto& b = sharded.FixedEngine().State(l);
    for (std::size_t i = 0; i < a.Size(); ++i) {
      ASSERT_EQ(a.Data()[i].raw(), b.Data()[i].raw())
          << "layer " << l << " cell " << i;
    }
  }
}

TEST(ShardedDeterminismTest, MoreShardsThanRowsStillCorrect)
{
  const NetworkSpec spec = ModelSpec("heat", 3, 8);
  DeSolver serial(spec, Opts(Precision::kDouble));
  serial.Run(10);
  DeSolver sharded(spec, Opts(Precision::kDouble));
  RunSharded(&sharded, 10, 16);
  const auto a = serial.StateDoubles(0);
  const auto b = sharded.StateDoubles(0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]);
  }
}

// ---------------------------------------------------------------------------
// Shard phase timings

TEST(ShardPhaseTimingsTest, ObservedRunIsBitIdenticalAndAccountsPhases)
{
  constexpr std::uint64_t kSteps = 24;
  constexpr int kShards = 4;
  const NetworkSpec spec = ModelSpec("heat", 17, 16);

  const auto plain = MakeSoaEngine(spec, Opts(Precision::kDouble));
  plain->Run(kSteps);

  const auto observed = MakeSoaEngine(spec, Opts(Precision::kDouble));
  ShardPhaseTimings timings(kShards);
  // Bound before the run: the histograms are registry-owned, so only
  // post-bind samples land in them (counters accumulate regardless).
  StatRegistry reg;
  timings.BindStats(&reg, "runtime.");
  TraceSession trace(kTraceAllCategories, 1 << 12);
  ShardRunOptions options;
  options.timings = &timings;
  options.trace = &trace;
  RunSharded(observed.get(), kSteps, kShards, options);

  // Observation must never change results.
  for (int l = 0; l < spec.NumLayers(); ++l) {
    const auto a = plain->Snapshot(l);
    const auto b = observed->Snapshot(l);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "layer " << l << " cell " << i;
    }
  }

  // Every shard took part in every step; the serial publish ran once
  // per step.
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(timings.ShardAt(static_cast<std::size_t>(s)).steps, kSteps)
        << "shard " << s;
  }
  EXPECT_EQ(timings.PublishCount(), kSteps);

  // Stat subtree: per-shard counters plus histogram sub-stats with
  // one sample per step.
  EXPECT_EQ(reg.Value("runtime.shard0.steps"),
            static_cast<double>(kSteps));
  EXPECT_EQ(reg.Value("runtime.publish.count"),
            static_cast<double>(kSteps));
  const auto snapshot = reg.TypedSnapshot();
  EXPECT_EQ(snapshot.at("runtime.shard2.step_us.count").value,
            static_cast<double>(kSteps));
  EXPECT_EQ(snapshot.at("runtime.publish.us.count").value,
            static_cast<double>(kSteps));

  // Trace: named lanes and per-phase spans.
  const std::string json = trace.ToChromeJson(1e3);
  EXPECT_NE(json.find("\"name\":\"shard0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard3\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"publish\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"refresh\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"step\""), std::string::npos);
}

TEST(ShardPhaseTimingsTest, SerialFallbackAccountsToShardZero)
{
  constexpr std::uint64_t kSteps = 12;
  const NetworkSpec spec = ModelSpec("heat", 8, 8);

  const auto plain = MakeSoaEngine(spec, Opts(Precision::kFixed32));
  plain->Run(kSteps);

  const auto observed = MakeSoaEngine(spec, Opts(Precision::kFixed32));
  ShardPhaseTimings timings(1);
  ShardRunOptions options;
  options.timings = &timings;
  RunSharded(observed.get(), kSteps, /*shards=*/1, options);

  for (int l = 0; l < spec.NumLayers(); ++l) {
    const auto a = plain->Snapshot(l);
    const auto b = observed->Snapshot(l);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]);
    }
  }
  EXPECT_EQ(timings.ShardAt(0).steps, kSteps);
  EXPECT_EQ(timings.PublishCount(), kSteps);
}

// ---------------------------------------------------------------------------
// SolverSession

SessionConfig
TinySessionConfig(const std::string& name, std::uint64_t target)
{
  SessionConfig sc;
  sc.name = name;
  sc.target_steps = target;
  sc.slice_steps = 8;
  return sc;
}

TEST(SolverSessionTest, RunsToTargetAndReportsDone)
{
  const NetworkSpec spec = ModelSpec("heat", 12, 12);
  SolverSession session(spec, Opts(Precision::kFixed32),
                        TinySessionConfig("t", 30));
  EXPECT_EQ(session.State(), SessionState::kIdle);
  EXPECT_EQ(session.RunToTarget(), 30u);
  EXPECT_EQ(session.State(), SessionState::kDone);
  EXPECT_EQ(session.StepsDone(), 30u);
  EXPECT_EQ(session.StepsExecuted(), 30u);
  EXPECT_TRUE(session.ReachedTarget());
  // Terminal: further stepping is a no-op.
  EXPECT_EQ(session.StepN(10), 0u);
}

TEST(SolverSessionTest, PauseBeforeStepRunsZeroSteps)
{
  const NetworkSpec spec = ModelSpec("heat", 12, 12);
  SolverSession session(spec, Opts(Precision::kDouble),
                        TinySessionConfig("p", 100));
  session.RequestPause();
  EXPECT_EQ(session.StepN(50), 0u);
  EXPECT_EQ(session.State(), SessionState::kPaused);
  session.Resume();
  EXPECT_EQ(session.StepN(50), 50u);
  EXPECT_EQ(session.StepsDone(), 50u);
}

TEST(SolverSessionTest, CancelIsTerminal)
{
  const NetworkSpec spec = ModelSpec("heat", 12, 12);
  SolverSession session(spec, Opts(Precision::kDouble),
                        TinySessionConfig("c", 100));
  session.StepN(16);
  session.RequestCancel();
  EXPECT_EQ(session.StepN(50), 0u);
  EXPECT_EQ(session.State(), SessionState::kCancelled);
  EXPECT_EQ(session.StepsDone(), 16u);
}

TEST(SolverSessionTest, CheckpointResumeRoundTripIsBitExact)
{
  const std::string dir = ScratchDir("session_resume");
  const std::string ckpt = dir + "/mid.ckpt";
  const NetworkSpec spec = ModelSpec("reaction_diffusion", 16, 16);
  const SolverOptions fixed = Opts(Precision::kFixed32);

  SolverSession uninterrupted(spec, fixed, TinySessionConfig("u", 60));
  uninterrupted.RunToTarget();

  SolverSession first(spec, fixed, TinySessionConfig("a", 60));
  first.StepN(25);
  ASSERT_TRUE(first.SaveCheckpoint(ckpt));

  SolverSession resumed(spec, fixed, TinySessionConfig("b", 60));
  ASSERT_TRUE(resumed.TryRestoreFromFile(ckpt));
  EXPECT_EQ(resumed.StepsDone(), 25u);
  resumed.RunToTarget();

  EXPECT_EQ(resumed.StepsDone(), 60u);
  EXPECT_EQ(resumed.StepsExecuted(), 35u);
  EXPECT_EQ(resumed.StateChecksum(), uninterrupted.StateChecksum());
}

TEST(SolverSessionTest, RestoreFromMissingFileIsColdStart)
{
  const NetworkSpec spec = ModelSpec("heat", 12, 12);
  SolverSession session(spec, Opts(Precision::kDouble),
                        TinySessionConfig("m", 10));
  EXPECT_FALSE(session.TryRestoreFromFile("/nonexistent/path.ckpt"));
  EXPECT_EQ(session.StepsDone(), 0u);
}

TEST(SolverSessionTest, AutoCheckpointWritesPeriodically)
{
  const std::string dir = ScratchDir("session_auto");
  const NetworkSpec spec = ModelSpec("heat", 12, 12);
  SessionConfig sc = TinySessionConfig("auto", 40);
  sc.checkpoint_every = 16;
  sc.checkpoint_path = dir + "/auto.ckpt";
  SolverSession session(spec, Opts(Precision::kFixed32), sc);
  session.RunToTarget();
  EXPECT_TRUE(std::filesystem::exists(sc.checkpoint_path));

  // The file must hold a valid mid-run (or final) state.
  SolverSession probe(spec, Opts(Precision::kFixed32),
                      TinySessionConfig("probe", 40));
  EXPECT_TRUE(probe.TryRestoreFromFile(sc.checkpoint_path));
  EXPECT_GE(probe.StepsDone(), 16u);
}

TEST(SolverSessionTest, BindStatsExposesSessionSubtree)
{
  StatRegistry registry;
  const NetworkSpec spec = ModelSpec("heat", 12, 12);
  SolverSession session(spec, Opts(Precision::kDouble),
                        TinySessionConfig("s", 20));
  session.BindStats(&registry);
  session.RunToTarget();
  const std::string prefix = "runtime.session" + std::to_string(session.Id());
  EXPECT_EQ(registry.Value(prefix + ".steps"), 20.0);
  EXPECT_EQ(registry.Value(prefix + ".steps_executed"), 20.0);
  EXPECT_EQ(registry.Value(prefix + ".state"),
            static_cast<double>(static_cast<int>(SessionState::kDone)));
}

TEST(SolverSessionTest, ShardedSessionMatchesSerialSession)
{
  const NetworkSpec spec = ModelSpec("reaction_diffusion", 16, 16);
  const SolverOptions fixed = Opts(Precision::kFixed32);

  SolverSession serial(spec, fixed, TinySessionConfig("ser", 30));
  serial.RunToTarget();

  SessionConfig sc = TinySessionConfig("shr", 30);
  sc.exec.shards = 3;
  SolverSession sharded(spec, fixed, sc);
  sharded.RunToTarget();

  EXPECT_EQ(serial.StateChecksum(), sharded.StateChecksum());
}

/**
 * The tentpole lifecycle contract: one persistent worker team serves
 * the whole session — every slice across run / pause / checkpoint /
 * restore / resume is another dispatch to the same resident workers,
 * never a fresh spawn, and the state stays bit-identical to a serial
 * session's.
 */
TEST(SolverSessionTest, PersistentTeamServesWholeLifecycle)
{
  const std::string dir = ScratchDir("session_team");
  const std::string ckpt = dir + "/team.ckpt";
  const NetworkSpec spec = ModelSpec("reaction_diffusion", 16, 16);
  const SolverOptions fixed = Opts(Precision::kFixed32);

  SolverSession serial(spec, fixed, TinySessionConfig("ser", 48));
  serial.RunToTarget();

  SessionConfig sc = TinySessionConfig("team", 48);
  sc.exec.shards = 3;
  StatRegistry registry;
  SolverSession session(spec, fixed, sc);
  session.BindStats(&registry);
  ASSERT_EQ(session.Team().Workers(), 3);

  session.StepN(16);
  const std::uint64_t after_first = session.Team().Dispatches();
  EXPECT_GE(after_first, 1u);

  session.RequestPause();
  EXPECT_EQ(session.StepN(8), 0u);  // paused: no dispatch
  session.Resume();

  ASSERT_TRUE(session.SaveCheckpoint(ckpt));
  session.StepN(16);
  ASSERT_TRUE(session.TryRestoreFromFile(ckpt));  // back to step 16
  session.RunToTarget();

  // Same team object all along: workers never re-spawned, dispatch
  // count strictly accumulated across the lifecycle.
  EXPECT_EQ(session.Team().Workers(), 3);
  EXPECT_GT(session.Team().Dispatches(), after_first);
  EXPECT_EQ(session.StepsDone(), 48u);
  EXPECT_EQ(session.StateChecksum(), serial.StateChecksum());

  const std::string prefix =
      "runtime.session" + std::to_string(session.Id());
  EXPECT_EQ(registry.Value(prefix + ".team.workers"), 3.0);
  EXPECT_EQ(registry.Value(prefix + ".team.dispatches"),
            static_cast<double>(session.Team().Dispatches()));
}

/**
 * Phase-counter parity: a single-shard session reports the same
 * runtime.session<N>.shard0.* subtree a sharded one does — the serial
 * fallback is no longer a blind spot.
 */
TEST(SolverSessionTest, SerialSessionEmitsShardPhaseCounters)
{
  const NetworkSpec spec = ModelSpec("heat", 12, 12);
  for (const int shards : {1, 3}) {
    StatRegistry registry;
    SessionConfig sc = TinySessionConfig("parity", 24);
    sc.exec.shards = shards;
    SolverSession session(spec, Opts(Precision::kDouble), sc);
    session.BindStats(&registry);
    session.RunToTarget();

    const std::string prefix =
        "runtime.session" + std::to_string(session.Id());
    EXPECT_EQ(registry.Value(prefix + ".shard0.steps"), 24.0)
        << "shards=" << shards;
    EXPECT_EQ(registry.Value(prefix + ".publish.count"), 24.0)
        << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// Manifest parsing

TEST(BatchManifestTest, ParsesJobsAndDefaults)
{
  const auto jobs = ParseManifest(
      "# two jobs\n"
      "model=heat\n"
      "rows=32\n"
      "steps=100  # trailing comment\n"
      "\n"
      "model=reaction_diffusion\n"
      "name=rd\n"
      "engine=double\n"
      "kernel_path=simd\n"
      "shards=4\n"
      "priority=-2\n"
      "seed=7\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "job0_heat");
  EXPECT_EQ(jobs[0].rows, 32u);
  EXPECT_EQ(jobs[0].cols, 64u);
  EXPECT_EQ(jobs[0].steps, 100u);
  EXPECT_EQ(jobs[0].exec.engine, "functional");
  EXPECT_EQ(jobs[0].exec.precision, "");
  EXPECT_EQ(jobs[0].exec.kernel_path, "auto");
  EXPECT_FALSE(jobs[0].has_seed);
  EXPECT_EQ(jobs[1].name, "rd");
  // Legacy engine=double folds into the unified policy.
  EXPECT_EQ(jobs[1].exec.engine, "functional");
  EXPECT_EQ(jobs[1].exec.precision, "double");
  EXPECT_EQ(jobs[1].exec.kernel_path, "simd");
  EXPECT_EQ(jobs[1].exec.shards, 4);
  EXPECT_EQ(jobs[1].priority, -2);
  EXPECT_TRUE(jobs[1].has_seed);
  EXPECT_EQ(jobs[1].seed, 7u);
}

TEST(BatchManifestTest, MalformedManifestsDie)
{
  EXPECT_DEATH(ParseManifest("rows=32\n"), "no 'model='");
  EXPECT_DEATH(ParseManifest("model=heat\nbogus_key=1\n"), "unknown key");
  EXPECT_DEATH(ParseManifest("model=heat\nsteps=abc\n"), "integer");
  EXPECT_DEATH(ParseManifest("model=heat\nengine=gpu\n"), "unknown engine");
  EXPECT_DEATH(ParseManifest("model=heat\nkernel_path=turbo\n"),
               "unknown kernel_path");
  EXPECT_DEATH(ParseManifest("model=heat\nname=x\n\nmodel=heat\nname=x\n"),
               "duplicate job name");
  EXPECT_DEATH(ParseManifest("# only comments\n"), "no jobs");
  EXPECT_DEATH(ParseManifest("model=heat\nexec=warp9\n"), "exec");
  // block > 1 needs the soa engine: caught at spec validation.
  EXPECT_DEATH(ParseManifest("model=heat\nexec=functional:block=4\n"),
               "temporal blocking");
}

TEST(BatchManifestTest, ExecKeyMergesOverFrontendDefaults)
{
  // cenn_batch seeds every job from its --exec value; per-job exec=
  // keys override only the fields they mention.
  JobSpec defaults;
  std::string parse_error;
  ASSERT_TRUE(
      ParseExecPolicy("soa:double:simd", &defaults.exec, &parse_error));
  const auto jobs = ParseManifest(
      "model=heat\n"
      "\n"
      "model=heat\nname=wide\nexec=shards=3\n"
      "\n"
      "model=heat\nname=classic\nexec=functional:fixed:kernel=auto\n",
      &defaults);
  ASSERT_EQ(jobs.size(), 3u);

  // Job 0: pure defaults.
  EXPECT_EQ(FormatExecPolicy(jobs[0].exec), "soa:double:simd");
  // Job 1: only shards overridden; engine/precision/path survive.
  EXPECT_EQ(jobs[1].exec.engine, "soa");
  EXPECT_EQ(jobs[1].exec.precision, "double");
  EXPECT_EQ(jobs[1].exec.kernel_path, "simd");
  EXPECT_EQ(jobs[1].exec.shards, 3);
  // Job 2: every mentioned field overridden back.
  EXPECT_EQ(jobs[2].exec.engine, "functional");
  EXPECT_EQ(jobs[2].exec.precision, "fixed");
  EXPECT_EQ(jobs[2].exec.kernel_path, "auto");
}

TEST(BatchManifestTest, CollectsEveryExecErrorWithLineNumbers)
{
  std::vector<JobSpecError> errors;
  const auto jobs = ParseManifestCollect(
      "model=heat\n"
      "exec=warp9\n"          // line 2: unknown token
      "rows=zero\n"           // line 3: malformed number
      "\n"
      "model=heat\n"
      "name=ok\n"
      "exec=soa:float:shards=2\n",
      &errors);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].line, 2);
  EXPECT_EQ(errors[0].key, "exec");
  EXPECT_EQ(errors[1].line, 3);
  EXPECT_EQ(errors[1].key, "rows");
  // The clean job still parses — one pass reports everything.
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(FormatExecPolicy(jobs[1].exec), "soa:float:shards=2");
}

TEST(BatchManifestTest, ErrorsCarryTheOriginFileWhenGiven)
{
  std::vector<JobSpecError> errors;
  ParseManifestCollect("model=heat\nrows=zero\n", &errors, nullptr,
                       "jobs/batch.txt");
  ASSERT_GE(errors.size(), 1u);
  EXPECT_EQ(errors[0].file, "jobs/batch.txt");
  EXPECT_EQ(errors[0].line, 2);
  EXPECT_EQ(errors[0].key, "rows");
  // Formatted as "<file>:<line>: key ..." so editors can jump to it.
  EXPECT_EQ(FormatJobSpecError(errors[0]).rfind("jobs/batch.txt:2: ", 0),
            0u);

  // Without an origin file the classic "line N:" form is preserved.
  std::vector<JobSpecError> bare;
  ParseManifestCollect("model=heat\nrows=zero\n", &bare);
  ASSERT_GE(bare.size(), 1u);
  EXPECT_EQ(FormatJobSpecError(bare[0]).rfind("line 2:", 0), 0u);
}

TEST(BatchManifestTest, ScenarioJobsValidateAtSubmitTime)
{
  // Naming both a model and a scenario source is one precise error.
  std::vector<JobSpecError> errors;
  ParseManifestCollect(
      "model=heat\nmodel_source=scenario x; dt 0.1; steps 1; var u; "
      "d u/dt = u\nsteps=5\n",
      &errors);
  bool saw_exclusive = false;
  for (const JobSpecError& e : errors) {
    if (e.message.find("exactly one") != std::string::npos) {
      saw_exclusive = true;
    }
  }
  EXPECT_TRUE(saw_exclusive) << FormatJobSpecErrors(errors);

  // A scenario that does not compile is rejected at parse time, keyed
  // to the source key so the client knows which line to fix.
  errors.clear();
  ParseManifestCollect("model_source=scenario x; var u\nsteps=5\n",
                       &errors);
  bool saw_compile = false;
  for (const JobSpecError& e : errors) {
    if (e.key == "model_source" &&
        e.message.find("compile") != std::string::npos) {
      saw_compile = true;
    }
  }
  EXPECT_TRUE(saw_compile) << FormatJobSpecErrors(errors);

  // A valid scenario with no step budget anywhere is caught up front,
  // not after the job is admitted.
  errors.clear();
  ParseManifestCollect(
      "model_source=scenario x; dt 0.1; var u; d u/dt = u\n", &errors);
  bool saw_steps = false;
  for (const JobSpecError& e : errors) {
    if (e.key == "steps") {
      saw_steps = true;
    }
  }
  EXPECT_TRUE(saw_steps) << FormatJobSpecErrors(errors);
}

TEST(BatchRunnerTest, InlineScenarioJobMatchesItsHandCodedTwin)
{
  // The same physics submitted twice — once as the registered C++
  // model, once as DSL text — must land on the same final checksum.
  const auto manifest = ParseManifest(
      "model=heat\nname=twin\nrows=12\ncols=12\nsteps=10\nseed=5\n"
      "\n"
      "model_source=scenario heat_text; dt 0.1; param kappa = 1.0; "
      "var phi; d phi/dt = kappa * laplacian(phi); "
      "init phi = gaussian_spots(spots=3)\n"
      "name=text\nrows=12\ncols=12\nsteps=10\nseed=5\n");
  BatchOptions options;
  options.out_dir = ScratchDir("batch_scenario");
  options.num_threads = 2;
  const auto results = BatchRunner(manifest, options).RunAll();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, JobStatus::kOk);
  EXPECT_EQ(results[1].status, JobStatus::kOk);
  EXPECT_NE(results[0].checksum, 0u);
  EXPECT_EQ(results[0].checksum, results[1].checksum);
  // Scenario jobs display a stable placeholder in the results CSV.
  const std::string csv = BatchRunner::ResultsCsv(results);
  EXPECT_NE(csv.find("text,inline,"), std::string::npos);
}

TEST(BatchRunnerTest, ScenarioFileJobsRunFromDiskAndDefaultTheirName)
{
  const std::string dir = ScratchDir("batch_scenario_file");
  const std::string path = dir + "/decay.cenn";
  {
    std::ofstream out(path);
    out << "scenario decay\ngrid 10 10\ndt 0.1\nsteps 8\n"
           "var u\nd u/dt = -u\ninit u = constant(value=1.0)\n";
  }
  const auto manifest =
      ParseManifest("model_file=" + path + "\nseed=3\n");
  ASSERT_EQ(manifest.size(), 1u);
  // Unnamed jobs take their stem from the scenario file's basename.
  EXPECT_EQ(manifest[0].name, "job0_decay");
  BatchOptions options;
  options.out_dir = dir;
  options.num_threads = 1;
  const auto results = BatchRunner(manifest, options).RunAll();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, JobStatus::kOk) << results[0].name;
  // steps= was omitted: the scenario's own `steps 8` budget applies.
  EXPECT_EQ(results[0].steps_done, 8u);
  EXPECT_NE(BatchRunner::ResultsCsv(results).find("file:" + path),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// BatchRunner

std::vector<BatchJobSpec>
TinyManifest()
{
  return ParseManifest(
      "model=heat\nname=h\nrows=12\ncols=12\nsteps=25\n"
      "\n"
      "model=reaction_diffusion\nname=rd\nrows=12\ncols=12\nsteps=20\n"
      "engine=double\nshards=2\n"
      "\n"
      "model=heat\nname=h2\nrows=10\ncols=10\nsteps=15\npriority=3\n");
}

TEST(BatchRunnerTest, RunsManifestToCompletion)
{
  const std::string dir = ScratchDir("batch_full");
  BatchOptions options;
  options.out_dir = dir;
  options.num_threads = 2;

  StatRegistry registry;
  BatchRunner runner(TinyManifest(), options);
  const auto results = runner.RunAll(&registry);

  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_EQ(r.status, JobStatus::kOk) << r.name;
    EXPECT_EQ(r.attempts, 1) << r.name;
    EXPECT_FALSE(JobStatusIsFailure(r.status)) << r.name;
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + r.name + ".done"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + r.name + ".stats.txt"));
  }
  EXPECT_EQ(results[0].name, "h");  // manifest order, not finish order
  EXPECT_EQ(results[0].steps_done, 25u);
  EXPECT_EQ(results[1].steps_done, 20u);
  EXPECT_EQ(registry.Value("runtime.batch.jobs_done"), 3.0);
  EXPECT_EQ(registry.Value("runtime.batch.jobs_failed"), 0.0);
  EXPECT_EQ(registry.Value("runtime.pool.jobs_completed"), 3.0);
  EXPECT_EQ(registry.Value("runtime.job0.attempts"), 1.0);

  const std::string csv = BatchRunner::ResultsCsv(results);
  EXPECT_NE(csv.find("name,model,exec,status,attempts"), std::string::npos);
  EXPECT_NE(csv.find("h,heat,functional,ok,1,25"), std::string::npos);
}

TEST(BatchRunnerTest, InterruptedBatchResumesToIdenticalState)
{
  // Reference: one uninterrupted run.
  const std::string ref_dir = ScratchDir("batch_ref");
  BatchOptions ref_options;
  ref_options.out_dir = ref_dir;
  ref_options.num_threads = 2;
  const auto manifest = ParseManifest(
      "model=reaction_diffusion\nname=rd\nrows=12\ncols=12\nsteps=50\n");
  const auto ref = BatchRunner(manifest, ref_options).RunAll();
  ASSERT_EQ(ref[0].status, JobStatus::kOk);

  // Interrupted run: 20-step budget per invocation -> 20, 40, 50.
  const std::string dir = ScratchDir("batch_resume");
  BatchOptions options;
  options.out_dir = dir;
  options.num_threads = 1;
  options.max_steps_per_job = 20;

  auto r1 = BatchRunner(manifest, options).RunAll();
  EXPECT_EQ(r1[0].status, JobStatus::kInterrupted);
  EXPECT_EQ(r1[0].steps_done, 20u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/rd.ckpt"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/rd.done"));

  options.resume = true;
  auto r2 = BatchRunner(manifest, options).RunAll();
  EXPECT_EQ(r2[0].status, JobStatus::kInterrupted);
  EXPECT_EQ(r2[0].steps_done, 40u);
  EXPECT_EQ(r2[0].steps_executed, 20u);

  auto r3 = BatchRunner(manifest, options).RunAll();
  EXPECT_EQ(r3[0].status, JobStatus::kOk);
  EXPECT_EQ(r3[0].steps_done, 50u);
  EXPECT_EQ(r3[0].steps_executed, 10u);
  // The stitched-together run ends in exactly the reference state.
  EXPECT_EQ(r3[0].checksum, ref[0].checksum);

  // Fourth invocation: served from the done marker, nothing recomputed.
  auto r4 = BatchRunner(manifest, options).RunAll();
  EXPECT_EQ(r4[0].status, JobStatus::kCached);
  EXPECT_EQ(r4[0].steps_done, 50u);
  EXPECT_EQ(r4[0].steps_executed, 0u);
  EXPECT_EQ(r4[0].checksum, ref[0].checksum);
}

TEST(BatchRunnerTest, CrashedJobsRecoverToFaultFreeChecksum)
{
  const auto manifest = ParseManifest(
      "model=reaction_diffusion\nname=rd\nrows=12\ncols=12\nsteps=60\n");

  BatchOptions ref_options;
  ref_options.out_dir = ScratchDir("batch_crash_ref");
  ref_options.num_threads = 1;
  const auto ref = BatchRunner(manifest, ref_options).RunAll();
  ASSERT_EQ(ref[0].status, JobStatus::kOk);

  // Two simulated crashes mid-run; each attempt restores the last
  // auto-checkpoint, and the final state must match the fault-free run.
  BatchOptions options;
  options.out_dir = ScratchDir("batch_crash");
  options.num_threads = 1;
  options.checkpoint_every = 10;
  options.max_retries = 2;
  options.fault_inject = "crash@20x2";

  StatRegistry registry;
  const auto results = BatchRunner(manifest, options).RunAll(&registry);
  EXPECT_EQ(results[0].status, JobStatus::kRecovered);
  EXPECT_EQ(results[0].attempts, 3);
  EXPECT_EQ(results[0].steps_done, 60u);
  EXPECT_EQ(results[0].checksum, ref[0].checksum);
  EXPECT_EQ(registry.Value("runtime.job0.attempts"), 3.0);
  EXPECT_EQ(registry.Value("runtime.batch.jobs_recovered"), 1.0);
  EXPECT_EQ(registry.Value("runtime.batch.retries"), 2.0);
  EXPECT_EQ(registry.Value("runtime.batch.faults_injected"), 2.0);
}

TEST(BatchRunnerTest, GuardCatchesInjectedCorruptionAndBatchRecovers)
{
  const auto manifest = ParseManifest(
      "model=heat\nname=h\nrows=12\ncols=12\nsteps=60\n");

  BatchOptions ref_options;
  ref_options.out_dir = ScratchDir("batch_flip_ref");
  ref_options.num_threads = 1;
  const auto ref = BatchRunner(manifest, ref_options).RunAll();

  // A flipped state bit blows one cell past max_abs; the guard trips
  // before the corrupt slice is checkpointed, so the retry restores a
  // clean state and converges to the reference checksum.
  BatchOptions options;
  options.out_dir = ScratchDir("batch_flip");
  options.num_threads = 1;
  options.checkpoint_every = 10;
  options.max_retries = 1;
  options.fault_inject = "flip@30";
  options.guard_enabled = true;
  options.guard.check_every = 1;

  const auto results = BatchRunner(manifest, options).RunAll();
  EXPECT_EQ(results[0].status, JobStatus::kRecovered);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_EQ(results[0].checksum, ref[0].checksum);
}

TEST(BatchRunnerTest, ExhaustedRetriesReportFailureStatus)
{
  const auto manifest = ParseManifest(
      "model=heat\nname=h\nrows=10\ncols=10\nsteps=40\n");

  // Three crashes but only one retry: the job must end kFailed and
  // JobStatusIsFailure must flag it (cenn_batch exits 1 on these).
  BatchOptions options;
  options.out_dir = ScratchDir("batch_exhaust");
  options.num_threads = 1;
  options.checkpoint_every = 10;
  options.max_retries = 1;
  options.fault_inject = "crash@20x3";

  const auto results = BatchRunner(manifest, options).RunAll();
  EXPECT_EQ(results[0].status, JobStatus::kFailed);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_TRUE(JobStatusIsFailure(results[0].status));

  // Diverged flavor: corruption with a guard but no retries left.
  BatchOptions doptions;
  doptions.out_dir = ScratchDir("batch_diverge");
  doptions.num_threads = 1;
  doptions.max_retries = 0;
  doptions.fault_inject = "flip@10";
  doptions.guard_enabled = true;
  doptions.guard.check_every = 1;
  const auto diverged = BatchRunner(manifest, doptions).RunAll();
  EXPECT_EQ(diverged[0].status, JobStatus::kDiverged);
  EXPECT_TRUE(diverged[0].health.diverged);
  EXPECT_TRUE(JobStatusIsFailure(diverged[0].status));
}

// ---------------------------------------------------------------------------
// Adaptive LUT range refit

TEST(LutRefitTest, SessionWidensRangeDeterministicallyAsStateGrows)
{
  // dx/dt = z exactly (no self decay, and the spec's only nonlinear
  // factor rides a zero-constant offset term), so the state ramps
  // linearly: x(t) = z * t, every increment exact in Q16.16. With the
  // LUT initially sampled over [-1, 1], margin 0.9 and growth 2.0,
  // the session must refit exactly when the ramp crosses 0.9, 1.8 and
  // 3.6 — and the widened range doubles each time, ending at [-8, 8].
  NetworkSpec spec;
  spec.rows = 4;
  spec.cols = 4;
  spec.dt = 0.125;
  LayerSpec layer;
  layer.z = 0.25;
  layer.has_self_decay = false;
  const auto fn = MakeFunction("ramp_id", [](double x) { return x; });
  layer.offset_terms.push_back({0.0, {{0, fn, false}}});
  spec.layers.push_back(layer);

  SolverProgram program;
  program.spec = spec;
  program.lut_config.default_spec.min_p = -1.0;
  program.lut_config.default_spec.max_p = 1.0;
  program.lut_config.default_spec.frac_index_bits = 4;

  EngineRequest request;
  request.engine = "functional";
  request.precision = "fixed";
  auto engine = BuildEngine(program, request);
  auto refitter = MakeLutRefitter(program, request);
  ASSERT_NE(refitter, nullptr);

  HealthGuardConfig hc;
  hc.check_every = 1;  // scan (and consider a refit) every slice
  HealthGuard guard(hc);
  engine->AttachHealthGuard(&guard);

  SessionConfig sc = TinySessionConfig("refit", 200);
  sc.slice_steps = 4;
  sc.lut_refitter = refitter;
  SolverSession session(std::move(engine), sc);
  EXPECT_EQ(session.RunToTarget(), 200u);

  // x(200 * 0.125) = 6.25: past 3.6, short of the next edge at 7.2.
  EXPECT_EQ(refitter->Refits(), 3);
  EXPECT_EQ(guard.Report().lut_refits, 3u);
  EXPECT_DOUBLE_EQ(refitter->CurrentConfig().default_spec.min_p, -8.0);
  EXPECT_DOUBLE_EQ(refitter->CurrentConfig().default_spec.max_p, 8.0);
  ASSERT_NE(refitter->CurrentBank(), nullptr);
  EXPECT_EQ(refitter->CurrentBank()->Get(*fn).Spec().max_p, 8.0);

  // The run itself stayed exact: the ramp never touched the LUT term.
  const std::vector<double> state = session.StateDoubles(0);
  for (const double v : state) {
    EXPECT_DOUBLE_EQ(v, 6.25);
  }
}

TEST(LutRefitTest, ArchRequestGetsNoRefitter)
{
  SolverProgram program;
  program.spec = ModelSpec("heat", 8, 8);
  EngineRequest request;
  request.engine = "arch";
  EXPECT_EQ(MakeLutRefitter(program, request), nullptr);
  request.engine = "soa";
  request.precision = "double";
  EXPECT_EQ(MakeLutRefitter(program, request), nullptr);
  request.precision = "fixed";
  EXPECT_NE(MakeLutRefitter(program, request), nullptr);
}

TEST(BatchRunnerTest, DerivedSeedsAreStablePerIndex)
{
  // The same manifest run twice (fresh dirs) must produce identical
  // checksums: per-job seeds depend only on (base_seed, index).
  const auto manifest = ParseManifest(
      "model=heat\nname=a\nrows=10\ncols=10\nsteps=10\n"
      "\n"
      "model=heat\nname=b\nrows=10\ncols=10\nsteps=10\n");
  BatchOptions options;
  options.num_threads = 2;
  options.out_dir = ScratchDir("batch_seed1");
  const auto run1 = BatchRunner(manifest, options).RunAll();
  options.out_dir = ScratchDir("batch_seed2");
  const auto run2 = BatchRunner(manifest, options).RunAll();
  ASSERT_EQ(run1.size(), run2.size());
  EXPECT_EQ(run1[0].checksum, run2[0].checksum);
  EXPECT_EQ(run1[1].checksum, run2[1].checksum);
  // Distinct indices got distinct streams -> distinct initial states.
  EXPECT_NE(run1[0].checksum, run1[1].checksum);
}

}  // namespace
}  // namespace cenn
