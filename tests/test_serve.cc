/**
 * @file
 * Tests for the serve subsystem (src/serve): the JSON wire layer, the
 * admission/quota/priority behavior of SolverService, fault recovery
 * and drain semantics, and the TCP transport driven over a real
 * loopback socket — including the headline equivalence property: jobs
 * executed through the service are bit-identical (state checksums) to
 * the same specs run through BatchRunner.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "lut/lut_store.h"
#include "models/benchmark_model.h"
#include "runtime/batch_manifest.h"
#include "runtime/batch_runner.h"
#include "runtime/engine_factory.h"
#include "runtime/solver_session.h"
#include "serve/json.h"
#include "serve/service.h"
#include "serve/tcp_server.h"
#include "serve/wire.h"

namespace cenn {
namespace {

/** Fresh per-test work directory under the gtest temp root. */
std::string
TestDir(const std::string& leaf)
{
  const std::string dir = ::testing::TempDir() + "cenn_serve_" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/** Service options tuned for fast tests. */
ServiceOptions
BaseOptions(const std::string& work_dir)
{
  ServiceOptions options;
  options.work_dir = work_dir;
  options.num_threads = 2;
  options.queue_capacity = 16;
  options.retry_after_ms = 1;
  return options;
}

/** One request/response round trip through the service core. */
JsonValue
Call(SolverService& service, const std::string& line)
{
  std::string response;
  service.HandleLine(line, &response);
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(response, &value, &error))
      << error << " in: " << response;
  return value;
}

/** Builds the nested "spec" object from key=value pairs. */
std::string
SpecJson(const std::vector<std::pair<std::string, std::string>>& kv)
{
  JsonWriter spec;
  for (const auto& [key, value] : kv) {
    spec.String(key, value);
  }
  return spec.Finish();
}

/** Builds a submit request line. */
std::string
SubmitLine(const std::string& tenant, const std::string& spec_json,
           const std::string& fault = "")
{
  JsonWriter w;
  w.String("op", "submit").String("tenant", tenant).Raw("spec", spec_json);
  if (!fault.empty()) {
    w.String("fault_inject", fault);
  }
  return w.Finish();
}

/** Submits and returns the accepted job id; fails the test on reject. */
std::string
MustSubmit(SolverService& service, const std::string& tenant,
           const std::string& spec_json, const std::string& fault = "")
{
  const JsonValue r = Call(service, SubmitLine(tenant, spec_json, fault));
  EXPECT_TRUE(r.GetBool("ok", false)) << "submit rejected";
  return r.GetString("job");
}

/** Long-polls the result op until the job is terminal. */
JsonValue
WaitResult(SolverService& service, const std::string& job)
{
  const std::string request = JsonWriter()
                                  .String("op", "result")
                                  .String("job", job)
                                  .Bool("wait", true)
                                  .Int("timeout_ms", 200)
                                  .Finish();
  for (int i = 0; i < 600; ++i) {
    JsonValue r = Call(service, request);
    if (r.GetBool("ok", false)) {
      return r;
    }
  }
  ADD_FAILURE() << "job " << job << " never reached a terminal status";
  return {};
}

/** Status op response for `job`. */
JsonValue
Status(SolverService& service, const std::string& job)
{
  return Call(service, JsonWriter()
                           .String("op", "status")
                           .String("job", job)
                           .Finish());
}

/** Polls until the job reports "running" (it may also already be done). */
void
WaitRunning(SolverService& service, const std::string& job)
{
  for (int i = 0; i < 2000; ++i) {
    const JsonValue s = Status(service, job);
    const std::string status = s.GetString("status");
    if (status == "running" || s.GetBool("done", false)) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ADD_FAILURE() << "job " << job << " never started";
}

/** A spec that runs long enough to still be running when poked. */
std::string
BlockerSpec(const std::string& name)
{
  return SpecJson({{"name", name},
                   {"model", "heat"},
                   {"rows", "16"},
                   {"cols", "16"},
                   {"steps", "50000000"},
                   {"seed", "1"}});
}

// ---------------------------------------------------------------------------
// JSON layer
// ---------------------------------------------------------------------------

TEST(ServeJson, ParsesScalarsObjectsAndArrays)
{
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"a":1,"b":"x","c":true,"d":null,"e":[1,2,3],"f":{"g":-2.5}})", &v,
      &error))
      << error;
  EXPECT_TRUE(v.IsObject());
  EXPECT_DOUBLE_EQ(v.GetNumber("a", 0), 1.0);
  EXPECT_EQ(v.GetString("b"), "x");
  EXPECT_TRUE(v.GetBool("c", false));
  ASSERT_NE(v.Find("e"), nullptr);
  EXPECT_EQ(v.Find("e")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("f")->GetNumber("g", 0), -2.5);
}

TEST(ServeJson, QuotedIntegersConvertViaGetNumber)
{
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(R"({"checksum":"12345678901234567890"})", &v, &error));
  EXPECT_GT(v.GetNumber("checksum", 0), 1e18);
}

TEST(ServeJson, RejectsMalformedInputWithoutDying)
{
  const char* bad[] = {
      "",          "{",      "}",          "[1,2",        R"({"a")",
      R"({"a":})", "tru",    "nul",        R"("unterm)",  "{}}",
      "1 2",       "--3",    R"({"a":1,})", R"({,"a":1})", "\x01\x02\x03",
  };
  for (const char* text : bad) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(ParseJson(text, &v, &error)) << "accepted: " << text;
    EXPECT_FALSE(error.empty());
  }
}

TEST(ServeJson, RejectsExcessiveNesting)
{
  std::string deep;
  for (int i = 0; i < 64; ++i) {
    deep += "[";
  }
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson(deep, &v, &error));
  EXPECT_NE(error.find("deep"), std::string::npos) << error;
}

TEST(ServeWire, EscapeRoundTripsThroughTheParser)
{
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const std::string line =
      JsonWriter().String("v", nasty).Finish();
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(line, &v, &error)) << error << " in " << line;
  // Control characters survive as *some* escaped form; quotes and
  // backslashes must round-trip exactly.
  const std::string back = v.GetString("v");
  EXPECT_NE(back.find("a\"b\\c"), std::string::npos);
}

TEST(ServeWire, ErrorResponseCarriesCodeAndRetryHint)
{
  const std::string line =
      ErrorResponse("submit", ServeErrorCode::kQuota, "full", 250);
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(line, &v, &error));
  EXPECT_FALSE(v.GetBool("ok", true));
  EXPECT_EQ(v.GetString("error"), "quota");
  EXPECT_DOUBLE_EQ(v.GetNumber("retry_after_ms", 0), 250.0);
  EXPECT_EQ(v.GetString("schema"), "cenn.serve.v1");
}

// ---------------------------------------------------------------------------
// HandleLine robustness (wire fuzz)
// ---------------------------------------------------------------------------

TEST(ServeFuzz, MalformedRequestsNeverKillTheService)
{
  SolverService service(BaseOptions(TestDir("fuzz")));
  const char* cases[] = {
      "",
      "not json at all",
      "{",
      "[1,2,3]",
      "42",
      "\"just a string\"",
      "null",
      "{}",
      R"({"op":42})",
      R"({"op":"nope"})",
      R"({"op":"submit"})",
      R"({"op":"submit","tenant":"t"})",
      R"({"op":"submit","tenant":"t","spec":17})",
      R"({"op":"submit","tenant":"UPPER!","spec":{"model":"heat"}})",
      R"({"op":"status"})",
      R"({"op":"status","job":"zzz"})",
      R"({"op":"result","job":""})",
      R"({"op":"cancel","job":"j999"})",
      R"({"op":"snapshot","job":"j999"})",
  };
  for (const char* text : cases) {
    std::string response;
    EXPECT_TRUE(service.HandleLine(text, &response)) << text;
    JsonValue v;
    std::string error;
    ASSERT_TRUE(ParseJson(response, &v, &error)) << response;
    EXPECT_FALSE(v.GetBool("ok", true)) << text << " -> " << response;
    EXPECT_FALSE(v.GetString("error").empty());
  }

  // Deterministic byte soup: every line must produce a parseable
  // error response and leave the service serving.
  std::mt19937 rng(20260809);
  const std::string alphabet = R"( {}[]":,abcdef0123\n\\tru-+.eE)";
  for (int i = 0; i < 500; ++i) {
    std::string line;
    const std::size_t len = 1 + rng() % 120;
    for (std::size_t k = 0; k < len; ++k) {
      line += alphabet[rng() % alphabet.size()];
    }
    std::string response;
    EXPECT_TRUE(service.HandleLine(line, &response));
    JsonValue v;
    std::string error;
    EXPECT_TRUE(ParseJson(response, &v, &error)) << response;
    EXPECT_EQ(v.GetString("schema"), "cenn.serve.v1");
  }

  // Still alive and serving after all of that.
  const JsonValue ping = Call(service, R"({"op":"ping"})");
  EXPECT_TRUE(ping.GetBool("ok", false));
  EXPECT_EQ(ping.GetString("state"), "serving");
}

TEST(ServeFuzz, SubmitValidationReportsPreciseKeys)
{
  SolverService service(BaseOptions(TestDir("validate")));

  // Unknown model.
  JsonValue r = Call(service, SubmitLine("t", SpecJson({{"model", "nope"}})));
  EXPECT_FALSE(r.GetBool("ok", true));
  EXPECT_EQ(r.GetString("error"), "invalid");
  EXPECT_NE(r.GetString("message").find("model"), std::string::npos);

  // Bad number and unknown key, both reported in one diagnostic.
  r = Call(service, SubmitLine("t", SpecJson({{"model", "heat"},
                                              {"rows", "zero"},
                                              {"bogus", "1"}})));
  EXPECT_FALSE(r.GetBool("ok", true));
  EXPECT_NE(r.GetString("message").find("rows"), std::string::npos);
  EXPECT_NE(r.GetString("message").find("bogus"), std::string::npos);

  // The size cap guards the server against resource exhaustion.
  r = Call(service, SubmitLine("t", SpecJson({{"model", "heat"},
                                              {"rows", "4096"},
                                              {"cols", "4096"}})));
  EXPECT_FALSE(r.GetBool("ok", true));
  EXPECT_EQ(r.GetString("error"), "invalid");

  // Tenant names feed stat names and are validated strictly.
  r = Call(service, SubmitLine("Bad Tenant!",
                               SpecJson({{"model", "heat"}})));
  EXPECT_FALSE(r.GetBool("ok", true));

  // A bad fault spec is a reject, not a fatal.
  r = Call(service, SubmitLine("t", SpecJson({{"model", "heat"}}),
                               "garbage@@spec"));
  EXPECT_FALSE(r.GetBool("ok", true));
  EXPECT_EQ(r.GetString("error"), "invalid");

  // Nothing was ever admitted.
  EXPECT_EQ(service.Jobs().TotalCreated(), 0u);
}

TEST(ServeFuzz, HostileNumbersAreRejectedNotUndefined)
{
  SolverService service(BaseOptions(TestDir("hostile")));

  // rows*cols wraps size_t (2^32 * 2^32 == 0) — the max_cells guard
  // must reject it anyway.
  JsonValue r = Call(service,
                     R"({"op":"submit","tenant":"t","spec":)"
                     R"({"model":"heat","rows":4294967296,)"
                     R"("cols":4294967296}})");
  EXPECT_FALSE(r.GetBool("ok", true));
  EXPECT_EQ(r.GetString("error"), "invalid");

  // Doubles outside the long-long range must not reach the cast; they
  // render as scientific notation and fail the integer grammar.
  r = Call(service,
           R"({"op":"submit","tenant":"t","spec":)"
           R"({"model":"heat","rows":1e300,"cols":8}})");
  EXPECT_FALSE(r.GetBool("ok", true));
  EXPECT_EQ(r.GetString("error"), "invalid");

  // Digit strings that overflow uint64 are rejected, not wrapped.
  r = Call(service, SubmitLine("t", SpecJson({{"model", "heat"},
                                              {"steps",
                                               "99999999999999999999"}})));
  EXPECT_FALSE(r.GetBool("ok", true));
  EXPECT_EQ(r.GetString("error"), "invalid");
  EXPECT_NE(r.GetString("message").find("steps"), std::string::npos);

  // Magnitudes beyond int range on int-typed keys.
  r = Call(service, SubmitLine("t", SpecJson({{"model", "heat"},
                                              {"priority",
                                               "4294967296"}})));
  EXPECT_FALSE(r.GetBool("ok", true));

  EXPECT_EQ(service.Jobs().TotalCreated(), 0u);

  // Hostile result/snapshot parameters degrade to bounded waits and
  // range errors on a real job.
  const std::string id =
      MustSubmit(service, "t", SpecJson({{"model", "heat"},
                                         {"rows", "8"},
                                         {"cols", "8"},
                                         {"steps", "32"}}));
  r = Call(service, "{\"op\":\"result\",\"job\":\"" + id +
                        "\",\"wait\":true,\"timeout_ms\":-1e308}");
  EXPECT_EQ(r.GetString("schema"), "cenn.serve.v1");  // no UB, clamped to 0
  const JsonValue done = WaitResult(service, id);
  EXPECT_TRUE(done.GetBool("ok", false));
  r = Call(service, "{\"op\":\"snapshot\",\"job\":\"" + id +
                        "\",\"layer\":1e300}");
  EXPECT_FALSE(r.GetBool("ok", true));  // finished / bad layer, not UB
}

TEST(ServeService, PoolRejectedSubmitKeepsRegistryConsistent)
{
  ServiceOptions options = BaseOptions(TestDir("retract"));
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.max_in_flight = 64;  // admission is no longer the tight bound
  options.tenant_quota = 0;
  SolverService service(options);

  const std::string running = MustSubmit(service, "t", BlockerSpec("r"));
  WaitRunning(service, running);
  const std::string queued = MustSubmit(service, "t", BlockerSpec("q"));

  // The pool queue is full: the submit is rejected and the
  // provisional record retracted — its id resolves nowhere, but the
  // record stays alive so a racing drain sweep never touches freed
  // memory.
  const JsonValue busy = Call(service, SubmitLine("t", BlockerSpec("x")));
  EXPECT_FALSE(busy.GetBool("ok", true));
  EXPECT_EQ(busy.GetString("error"), "busy");
  const std::string ghost =
      "j" + std::to_string(service.Jobs().TotalCreated());
  const JsonValue s = Status(service, ghost);
  EXPECT_FALSE(s.GetBool("ok", true));
  EXPECT_EQ(s.GetString("error"), "unknown_job");

  // The drain sweep skips the retracted record and interrupts the
  // live ones normally.
  service.Drain();
  for (const std::string& job : {running, queued}) {
    EXPECT_EQ(WaitResult(service, job).GetString("status"), "interrupted")
        << job;
  }
}

// ---------------------------------------------------------------------------
// Job lifecycle through the service core
// ---------------------------------------------------------------------------

TEST(ServeService, JobRunsToCompletionWithFullResult)
{
  SolverService service(BaseOptions(TestDir("basic")));
  const std::string job = MustSubmit(
      service, "alice",
      SpecJson({{"name", "basic"}, {"model", "heat"}, {"rows", "12"},
                {"cols", "12"}, {"steps", "40"}, {"seed", "7"}}));
  EXPECT_EQ(job, "j1");

  const JsonValue result = WaitResult(service, job);
  EXPECT_EQ(result.GetString("status"), "ok");
  EXPECT_EQ(result.GetString("tenant"), "alice");
  EXPECT_DOUBLE_EQ(result.GetNumber("steps_done", 0), 40.0);
  EXPECT_DOUBLE_EQ(result.GetNumber("steps_executed", 0), 40.0);
  EXPECT_NE(result.GetString("checksum"), "0");
  EXPECT_DOUBLE_EQ(result.GetNumber("attempts", 0), 1.0);

  // Terminal status is also visible through the status op.
  const JsonValue status = Status(service, job);
  EXPECT_EQ(status.GetString("status"), "ok");
  EXPECT_TRUE(status.GetBool("done", false));

  // The serve.* subtree recorded the completion, per tenant too.
  const std::string dump = service.Stats().DumpJson();
  EXPECT_NE(dump.find("serve.jobs_completed"), std::string::npos);
  EXPECT_NE(dump.find("serve.tenant.alice.completed"), std::string::npos);
  EXPECT_NE(dump.find("runtime.pool."), std::string::npos);
}

TEST(ServeService, ChecksumsMatchBatchRunnerAcross100Jobs)
{
  // The headline property: the same specs produce bit-identical final
  // states whether run by cenn_batch's runner or through the service,
  // regardless of scheduling, quotas or backpressure along the way.
  constexpr int kJobs = 105;
  const char* models[] = {"heat", "reaction_diffusion", "fisher"};
  const char* tenants[] = {"alice", "bob", "carol"};

  std::vector<BatchJobSpec> specs(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    BatchJobSpec& s = specs[i];
    s.name = "eq" + std::to_string(i);
    s.model = models[i % 3];
    s.rows = 8 + i % 5;
    s.cols = 8 + (i * 2) % 5;
    s.steps = 20 + i % 21;
    s.seed = 1000 + i;
    s.has_seed = true;
    if (i % 2 != 0) {
      s.exec.precision = "double";  // functional engine at double
    }
    s.priority = i % 4;
  }

  BatchOptions batch_options;
  batch_options.out_dir = TestDir("eq_batch");
  batch_options.num_threads = 4;
  std::map<std::string, std::uint64_t> reference;
  for (const JobResult& r : BatchRunner(specs, batch_options).RunAll()) {
    ASSERT_EQ(r.status, JobStatus::kOk) << r.name;
    reference[r.name] = r.checksum;
  }

  // Pin every model's LUT tables resident for the whole serve phase:
  // the store then satisfies each fixed-precision job by sharing, so
  // the 105 jobs below run with zero table builds — and must still
  // reproduce the batch runner's checksums bit-for-bit.
  std::vector<LutBankHandle> pinned;
  for (const char* name : models) {
    ModelConfig mc;
    mc.rows = 8;
    mc.cols = 8;
    const SolverProgram program = MakeProgram(*MakeModel(name, mc));
    pinned.push_back(
        LutStore::Global().Acquire(program.spec, program.lut_config));
  }
  const std::uint64_t builds_before = LutStore::Global().Builds();
  const std::uint64_t shared_before = LutStore::Global().SharedAcquires();

  ServiceOptions options = BaseOptions(TestDir("eq_serve"));
  options.num_threads = 4;
  options.queue_capacity = 16;
  options.tenant_quota = 12;
  SolverService service(options);

  // Submit everything as fast as the admission controller allows;
  // quota/busy rejections are the backpressure contract and must be
  // retryable, never fatal and never unboundedly queued.
  std::vector<std::string> ids(kJobs);
  int rejections = 0;
  for (int i = 0; i < kJobs; ++i) {
    const std::string line = SubmitLine(
        tenants[i % 3],
        SpecJson({{"name", specs[i].name},
                  {"model", specs[i].model},
                  {"rows", std::to_string(specs[i].rows)},
                  {"cols", std::to_string(specs[i].cols)},
                  {"steps", std::to_string(specs[i].steps)},
                  {"seed", std::to_string(specs[i].seed)},
                  {"exec", FormatExecPolicy(specs[i].exec)},
                  {"priority", std::to_string(specs[i].priority)}}));
    for (int attempt = 0;; ++attempt) {
      ASSERT_LT(attempt, 20000) << "submit " << i << " starved";
      const JsonValue r = Call(service, line);
      if (r.GetBool("ok", false)) {
        ids[i] = r.GetString("job");
        break;
      }
      const std::string code = r.GetString("error");
      ASSERT_TRUE(code == "quota" || code == "busy") << code;
      EXPECT_GE(r.GetNumber("retry_after_ms", -1), 0.0);
      ++rejections;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // With 105 jobs against a 20-deep in-flight bound, backpressure
  // must actually have engaged.
  EXPECT_GT(rejections, 0);

  for (int i = 0; i < kJobs; ++i) {
    const JsonValue result = WaitResult(service, ids[i]);
    EXPECT_EQ(result.GetString("status"), "ok") << specs[i].name;
    EXPECT_EQ(result.GetString("checksum"),
              std::to_string(reference[specs[i].name]))
        << specs[i].name;
  }

  // Sharing engaged: the pinned tables served every LUT-backed job
  // (no job built its own copy), and at least the LUT-backed jobs
  // recorded shared acquires.
  EXPECT_EQ(LutStore::Global().Builds(), builds_before);
  EXPECT_GT(LutStore::Global().SharedAcquires(), shared_before);
}

TEST(ServeService, QuotaAndCapacityRejectionsAreBoundedAndRetryable)
{
  ServiceOptions options = BaseOptions(TestDir("quota"));
  options.num_threads = 1;
  options.tenant_quota = 2;
  options.max_in_flight = 3;
  SolverService service(options);

  const std::string blocker = MustSubmit(service, "alice", BlockerSpec("b1"));
  WaitRunning(service, blocker);
  const std::string queued = MustSubmit(service, "alice", BlockerSpec("b2"));

  // Third submit for the same tenant: quota reject with a retry hint,
  // and crucially *not* queued.
  const JsonValue rejected =
      Call(service, SubmitLine("alice", BlockerSpec("b3")));
  EXPECT_FALSE(rejected.GetBool("ok", true));
  EXPECT_EQ(rejected.GetString("error"), "quota");
  EXPECT_GE(rejected.GetNumber("retry_after_ms", -1), 1.0);
  EXPECT_EQ(service.Jobs().TotalCreated(), 2u);

  // Another tenant still gets in (global bound 3 admits one more)...
  const std::string other = MustSubmit(service, "bob", BlockerSpec("b4"));
  // ...but the next one hits the global in-flight bound.
  const JsonValue busy = Call(service, SubmitLine("carol", BlockerSpec("b5")));
  EXPECT_FALSE(busy.GetBool("ok", true));
  EXPECT_EQ(busy.GetString("error"), "busy");

  // Cancel everything; released capacity admits new work again.
  for (const std::string& job : {blocker, queued, other}) {
    Call(service, JsonWriter()
                      .String("op", "cancel")
                      .String("job", job)
                      .Finish());
    const JsonValue r = WaitResult(service, job);
    EXPECT_EQ(r.GetString("status"), "cancelled") << job;
  }
  const std::string after = MustSubmit(
      service, "alice",
      SpecJson({{"model", "heat"}, {"rows", "8"}, {"cols", "8"},
                {"steps", "20"}, {"seed", "3"}}));
  EXPECT_EQ(WaitResult(service, after).GetString("status"), "ok");
}

TEST(ServeService, PriorityOrdersDispatchAcrossTenants)
{
  ServiceOptions options = BaseOptions(TestDir("priority"));
  options.num_threads = 1;
  options.tenant_quota = 0;  // quotas off; this test is about ordering
  SolverService service(options);

  const std::string blocker = MustSubmit(service, "alice", BlockerSpec("bk"));
  WaitRunning(service, blocker);

  auto spec_with_priority = [](const std::string& name, int priority) {
    return SpecJson({{"name", name},
                     {"model", "heat"},
                     {"rows", "8"},
                     {"cols", "8"},
                     {"steps", "20"},
                     {"seed", "2"},
                     {"priority", std::to_string(priority)}});
  };
  const std::string low = MustSubmit(service, "bob",
                                     spec_with_priority("low", 0));
  const std::string high = MustSubmit(service, "carol",
                                      spec_with_priority("high", 9));
  const std::string mid = MustSubmit(service, "bob",
                                     spec_with_priority("mid", 3));

  Call(service, JsonWriter()
                    .String("op", "cancel")
                    .String("job", blocker)
                    .Finish());
  WaitResult(service, blocker);
  for (const std::string& job : {low, high, mid}) {
    WaitResult(service, job);
  }

  const double seq_low = Status(service, low).GetNumber("dispatch_seq", -1);
  const double seq_high = Status(service, high).GetNumber("dispatch_seq", -1);
  const double seq_mid = Status(service, mid).GetNumber("dispatch_seq", -1);
  EXPECT_LT(seq_high, seq_mid);
  EXPECT_LT(seq_mid, seq_low);
}

TEST(ServeService, CancelWorksQueuedAndRunning)
{
  ServiceOptions options = BaseOptions(TestDir("cancel"));
  options.num_threads = 1;
  options.tenant_quota = 0;
  SolverService service(options);

  const std::string running = MustSubmit(service, "t", BlockerSpec("r"));
  WaitRunning(service, running);
  const std::string queued = MustSubmit(service, "t", BlockerSpec("q"));

  // Queued cancel finalizes immediately without ever dispatching.
  JsonValue r = Call(service, JsonWriter()
                                  .String("op", "cancel")
                                  .String("job", queued)
                                  .Finish());
  EXPECT_TRUE(r.GetBool("ok", false));
  const JsonValue queued_result = WaitResult(service, queued);
  EXPECT_EQ(queued_result.GetString("status"), "cancelled");
  EXPECT_EQ(queued_result.GetString("checksum"), "0");

  // Running cancel stops at a slice boundary.
  r = Call(service, JsonWriter()
                        .String("op", "cancel")
                        .String("job", running)
                        .Finish());
  EXPECT_TRUE(r.GetBool("ok", false));
  const JsonValue running_result = WaitResult(service, running);
  EXPECT_EQ(running_result.GetString("status"), "cancelled");

  // Cancelling a terminal job is a no-op, not an error.
  r = Call(service, JsonWriter()
                        .String("op", "cancel")
                        .String("job", running)
                        .Finish());
  EXPECT_TRUE(r.GetBool("ok", false));
  EXPECT_FALSE(r.GetBool("cancelled", true));
}

TEST(ServeService, GuardTripRecoversFromCheckpointAndMatchesCleanRun)
{
  ServiceOptions options = BaseOptions(TestDir("recover"));
  options.guard_enabled = true;
  options.guard.check_every = 1;
  options.max_retries = 2;
  SolverService service(options);

  const std::string spec =
      SpecJson({{"model", "heat"}, {"rows", "12"}, {"cols", "12"},
                {"steps", "60"}, {"seed", "7"}, {"checkpoint_every", "10"}});

  const std::string clean = MustSubmit(service, "t", spec);
  const JsonValue clean_result = WaitResult(service, clean);
  ASSERT_EQ(clean_result.GetString("status"), "ok");

  // A state corruption mid-run trips the guard; the retry restores
  // the last good checkpoint and converges to the clean checksum.
  const std::string flipped = MustSubmit(service, "t", spec, "flip@30");
  const JsonValue flip_result = WaitResult(service, flipped);
  EXPECT_EQ(flip_result.GetString("status"), "recovered");
  EXPECT_GE(flip_result.GetNumber("attempts", 0), 2.0);
  EXPECT_EQ(flip_result.GetString("checksum"),
            clean_result.GetString("checksum"));

  // A thrown crash takes the same path.
  const std::string crashed = MustSubmit(service, "t", spec, "crash@20");
  const JsonValue crash_result = WaitResult(service, crashed);
  EXPECT_EQ(crash_result.GetString("status"), "recovered");
  EXPECT_EQ(crash_result.GetString("checksum"),
            clean_result.GetString("checksum"));

  // The server kept serving throughout.
  EXPECT_TRUE(Call(service, R"({"op":"ping"})").GetBool("ok", false));
}

TEST(ServeService, ExhaustedRetriesReportDivergedWithoutKillingTheServer)
{
  ServiceOptions options = BaseOptions(TestDir("diverged"));
  options.guard_enabled = true;
  options.guard.check_every = 1;
  options.max_retries = 0;  // fail fast: one guard trip is terminal
  SolverService service(options);

  const std::string job = MustSubmit(
      service, "t",
      SpecJson({{"model", "heat"}, {"rows", "12"}, {"cols", "12"},
                {"steps", "60"}, {"seed", "7"}}),
      "flip@30");
  const JsonValue result = WaitResult(service, job);
  EXPECT_EQ(result.GetString("status"), "diverged");
  EXPECT_FALSE(result.GetString("message").empty());

  // The failure is the job's, not the server's.
  const JsonValue ping = Call(service, R"({"op":"ping"})");
  EXPECT_TRUE(ping.GetBool("ok", false));
  const std::string next = MustSubmit(
      service, "t",
      SpecJson({{"model", "heat"}, {"rows", "8"}, {"cols", "8"},
                {"steps", "20"}, {"seed", "4"}}));
  EXPECT_EQ(WaitResult(service, next).GetString("status"), "ok");
}

TEST(ServeService, SnapshotPausesAtSliceBoundaryAndResumes)
{
  ServiceOptions options = BaseOptions(TestDir("snapshot"));
  options.num_threads = 1;
  SolverService service(options);

  const std::string job = MustSubmit(service, "t", BlockerSpec("snap"));
  WaitRunning(service, job);

  // "running" is visible before the worker publishes its session, so
  // the first snapshot may draw a retryable busy — honor the contract.
  const std::string snap_request = JsonWriter()
                                       .String("op", "snapshot")
                                       .String("job", job)
                                       .Int("layer", 0)
                                       .Finish();
  JsonValue snap = Call(service, snap_request);
  for (int i = 0; i < 1000 && snap.GetString("error") == "busy"; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    snap = Call(service, snap_request);
  }
  ASSERT_TRUE(snap.GetBool("ok", false)) << snap.GetString("message");
  EXPECT_DOUBLE_EQ(snap.GetNumber("rows", 0), 16.0);
  EXPECT_DOUBLE_EQ(snap.GetNumber("cols", 0), 16.0);
  const JsonValue* values = snap.Find("values");
  ASSERT_NE(values, nullptr);
  ASSERT_TRUE(values->IsArray());
  EXPECT_EQ(values->array.size(), 16u * 16u);

  // Out-of-range layer is a clean reject.
  const JsonValue bad = Call(service, JsonWriter()
                                          .String("op", "snapshot")
                                          .String("job", job)
                                          .Int("layer", 99)
                                          .Finish());
  EXPECT_FALSE(bad.GetBool("ok", true));
  EXPECT_EQ(bad.GetString("error"), "invalid");

  // The session resumed after each snapshot; cancel ends it.
  Call(service, JsonWriter()
                    .String("op", "cancel")
                    .String("job", job)
                    .Finish());
  EXPECT_EQ(WaitResult(service, job).GetString("status"), "cancelled");
}

TEST(ServeService, DrainFlushesQueueAndLeavesRestorableCheckpoints)
{
  const std::string dir = TestDir("drain");
  ServiceOptions options = BaseOptions(dir);
  options.num_threads = 1;
  options.tenant_quota = 0;
  SolverService service(options);

  const std::string running = MustSubmit(service, "t", BlockerSpec("run"));
  WaitRunning(service, running);
  // Let it execute at least one slice so the drain checkpoint has
  // real progress in it.
  for (int i = 0; i < 2000; ++i) {
    if (Status(service, running).GetNumber("steps_done", 0) >= 64) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string queued1 = MustSubmit(service, "t", BlockerSpec("q1"));
  const std::string queued2 = MustSubmit(service, "t", BlockerSpec("q2"));

  service.Drain();

  // Queued jobs were flushed, the running one checkpointed; all wake
  // their waiters with "interrupted".
  for (const std::string& job : {running, queued1, queued2}) {
    const JsonValue r = WaitResult(service, job);
    EXPECT_EQ(r.GetString("status"), "interrupted") << job;
  }

  // New submits are refused while draining.
  const JsonValue rejected = Call(service, SubmitLine("t", BlockerSpec("x")));
  EXPECT_FALSE(rejected.GetBool("ok", true));
  EXPECT_EQ(rejected.GetString("error"), "draining");

  // The interrupted session's checkpoint restores into a fresh
  // session at the recorded step — not corrupt, not empty.
  const std::string ckpt = dir + "/" + running + ".ckpt";
  ASSERT_TRUE(std::filesystem::exists(ckpt));
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  mc.seed = 1;
  const auto model = MakeModel("heat", mc);
  SessionConfig sc;
  sc.name = "restore_check";
  SolverSession session(BuildEngine(MakeProgram(*model), EngineRequest{}),
                        sc);
  ASSERT_TRUE(session.TryRestoreFromFile(ckpt));
  EXPECT_GT(session.StepsDone(), 0u);
}

// ---------------------------------------------------------------------------
// Manifest / JobSpec sharing (satellite: reusable parse API)
// ---------------------------------------------------------------------------

TEST(ServeManifest, CollectingParserReportsEveryProblemWithLines)
{
  const std::string text =
      "model=heat\n"
      "rows=zero\n"     // line 2: bad number
      "bogus=1\n"       // line 3: unknown key
      "\n"
      "model=heat\n"
      "name=dup\n"
      "\n"
      "model=heat\n"
      "name=dup\n";     // duplicate name
  std::vector<JobSpecError> errors;
  const auto jobs = ParseManifestCollect(text, &errors);
  ASSERT_GE(errors.size(), 3u);

  bool saw_rows = false;
  bool saw_bogus = false;
  bool saw_dup = false;
  for (const JobSpecError& e : errors) {
    if (e.key == "rows" && e.line == 2) {
      saw_rows = true;
    }
    if (e.key == "bogus" && e.line == 3) {
      saw_bogus = true;
    }
    if (e.message.find("dup") != std::string::npos) {
      saw_dup = true;
    }
  }
  EXPECT_TRUE(saw_rows);
  EXPECT_TRUE(saw_bogus);
  EXPECT_TRUE(saw_dup);

  // The aggregate formatter names the lines so a client can fix the
  // manifest in one pass.
  const std::string joined = FormatJobSpecErrors(errors);
  EXPECT_NE(joined.find("line 2"), std::string::npos);
  EXPECT_NE(joined.find("line 3"), std::string::npos);
}

TEST(ServeManifest, FileOriginFlowsThroughToFormattedErrors)
{
  std::vector<JobSpecError> errors;
  ParseManifestCollect("model=heat\nrows=zero\n", &errors, nullptr,
                       "tenant/jobs.txt");
  ASSERT_GE(errors.size(), 1u);
  EXPECT_EQ(errors[0].file, "tenant/jobs.txt");
  EXPECT_NE(FormatJobSpecErrors(errors).find("tenant/jobs.txt:2: "),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Scenario DSL jobs over serve
// ---------------------------------------------------------------------------

TEST(ServeScenario, InlineScenarioMatchesHandCodedTwinChecksum)
{
  SolverService service(BaseOptions(TestDir("scenario_twin")));
  const std::string src =
      "scenario heat_text; dt 0.1; param kappa = 1.0; var phi; "
      "d phi/dt = kappa * laplacian(phi); "
      "init phi = gaussian_spots(spots=3)";
  const std::string twin = MustSubmit(
      service, "t",
      SpecJson({{"name", "twin"}, {"model", "heat"}, {"rows", "12"},
                {"cols", "12"}, {"steps", "10"}, {"seed", "5"}}));
  const std::string text = MustSubmit(
      service, "t",
      SpecJson({{"name", "text"}, {"model_source", src}, {"rows", "12"},
                {"cols", "12"}, {"steps", "10"}, {"seed", "5"}}));
  const JsonValue a = WaitResult(service, twin);
  const JsonValue b = WaitResult(service, text);
  EXPECT_EQ(a.GetString("status"), "ok");
  EXPECT_EQ(b.GetString("status"), "ok");
  EXPECT_FALSE(a.GetString("checksum").empty());
  EXPECT_EQ(a.GetString("checksum"), b.GetString("checksum"))
      << "DSL text and C++ model diverged over the serve path";
  // Status reports a stable placeholder for inline scenario jobs.
  EXPECT_EQ(Status(service, text).GetString("model"), "inline");
}

TEST(ServeScenario, ScenarioFileJobsRunFromDisk)
{
  const std::string dir = TestDir("scenario_file");
  const std::string path = dir + "/osc.cenn";
  {
    std::ofstream out(path);
    out << "scenario osc\ngrid 10 10\ndt 0.1\nsteps 12\n"
           "var u\nd u/dt = -u\ninit u = constant(value=1.0)\n";
  }
  SolverService service(BaseOptions(dir));
  const std::string job = MustSubmit(
      service, "t", SpecJson({{"name", "osc"}, {"model_file", path}}));
  const JsonValue r = WaitResult(service, job);
  EXPECT_EQ(r.GetString("status"), "ok");
  // steps= was omitted: the file's own `steps 12` budget applies.
  EXPECT_EQ(r.GetString("steps_done"), "12");
  EXPECT_EQ(Status(service, job).GetString("model"), "file:" + path);
}

TEST(ServeScenario, BadScenariosAreRejectedAtSubmitNotAtRun)
{
  SolverService service(BaseOptions(TestDir("scenario_bad")));

  // Does not compile: the reject names the spec key and the position.
  JsonValue r = Call(
      service,
      SubmitLine("t", SpecJson({{"model_source", "scenario x; var u"},
                                {"steps", "5"}})));
  EXPECT_FALSE(r.GetBool("ok", true));
  EXPECT_EQ(r.GetString("error"), "invalid");
  EXPECT_NE(r.GetString("message").find("model_source"), std::string::npos);
  EXPECT_NE(r.GetString("message").find("compile"), std::string::npos);

  // Naming both a model and a scenario is ambiguous — rejected.
  r = Call(service,
           SubmitLine("t", SpecJson({{"model", "heat"},
                                     {"model_source", "scenario x"},
                                     {"steps", "5"}})));
  EXPECT_FALSE(r.GetBool("ok", true));

  // Missing file: rejected with the I/O error, never a worker crash.
  r = Call(service,
           SubmitLine("t", SpecJson({{"model_file", "/nope/missing.cenn"},
                                     {"steps", "5"}})));
  EXPECT_FALSE(r.GetBool("ok", true));
  EXPECT_NE(r.GetString("message").find("model_file"), std::string::npos);

  // None of it was admitted.
  EXPECT_EQ(service.Jobs().TotalCreated(), 0u);
}

// ---------------------------------------------------------------------------
// TCP loopback
// ---------------------------------------------------------------------------

/** Minimal blocking loopback client with a receive timeout. */
class LoopbackClient
{
  public:
    ~LoopbackClient()
    {
      if (fd_ >= 0) {
        ::close(fd_);
      }
    }

    bool Connect(int port)
    {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ < 0) {
        return false;
      }
      timeval tv{10, 0};
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0;
    }

    bool Send(const std::string& data)
    {
      std::size_t sent = 0;
      while (sent < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
          return false;
        }
        sent += static_cast<std::size_t>(n);
      }
      return true;
    }

    /** Reads one newline-terminated line ("" on close/timeout). */
    std::string ReadLine()
    {
      std::size_t newline;
      while ((newline = buffer_.find('\n')) == std::string::npos) {
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0) {
          return "";
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
      }
      const std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }

    /** True when the peer has closed (next read returns 0 bytes). */
    bool PeerClosed()
    {
      char byte;
      return ::recv(fd_, &byte, 1, 0) <= 0;
    }

    void Close()
    {
      if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
      }
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

JsonValue
ParseLine(const std::string& line)
{
  JsonValue v;
  std::string error;
  EXPECT_TRUE(ParseJson(line, &v, &error)) << error << " in: " << line;
  return v;
}

TEST(ServeTcp, LoopbackLifecycleFramingAndShutdown)
{
  SolverService service(BaseOptions(TestDir("tcp")));
  TcpServerOptions tcp;
  tcp.max_line_bytes = 1024;
  TcpServer server(
      tcp,
      [&service](const std::string& line, std::string* response) {
        return service.HandleLine(line, response);
      },
      [&service] { service.OnConnection(); });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.Port(), 0);

  {
    LoopbackClient client;
    ASSERT_TRUE(client.Connect(server.Port()));

    // Fragmented request: the frame assembles across two sends.
    ASSERT_TRUE(client.Send(R"({"op":"pi)"));
    ASSERT_TRUE(client.Send("ng\"}\n"));
    JsonValue r = ParseLine(client.ReadLine());
    EXPECT_TRUE(r.GetBool("ok", false));
    EXPECT_EQ(r.GetString("op"), "ping");

    // Pipelined requests: two frames in one send, two responses.
    ASSERT_TRUE(client.Send("{\"op\":\"ping\"}\n{\"op\":\"stats\"}\n"));
    EXPECT_EQ(ParseLine(client.ReadLine()).GetString("op"), "ping");
    EXPECT_EQ(ParseLine(client.ReadLine()).GetString("op"), "stats");

    // Jobs over the socket, three tenants.
    const char* tenants[] = {"alice", "bob", "carol"};
    std::vector<std::string> ids;
    for (int i = 0; i < 9; ++i) {
      const std::string line = SubmitLine(
          tenants[i % 3],
          SpecJson({{"model", "heat"},
                    {"rows", "8"},
                    {"cols", "8"},
                    {"steps", "20"},
                    {"seed", std::to_string(100 + i)}}));
      ASSERT_TRUE(client.Send(line + "\n"));
      const JsonValue submit = ParseLine(client.ReadLine());
      ASSERT_TRUE(submit.GetBool("ok", false));
      ids.push_back(submit.GetString("job"));
    }
    for (const std::string& id : ids) {
      ASSERT_TRUE(client.Send(JsonWriter()
                                  .String("op", "result")
                                  .String("job", id)
                                  .Bool("wait", true)
                                  .Int("timeout_ms", 30000)
                                  .Finish() +
                              "\n"));
      const JsonValue result = ParseLine(client.ReadLine());
      EXPECT_TRUE(result.GetBool("ok", false));
      EXPECT_EQ(result.GetString("status"), "ok");
      EXPECT_NE(result.GetString("checksum"), "0");
    }
  }

  // A truncated frame (no newline, then close) must not disturb the
  // server; the next connection is served normally.
  {
    LoopbackClient client;
    ASSERT_TRUE(client.Connect(server.Port()));
    ASSERT_TRUE(client.Send(R"({"op":"ping")"));
    client.Close();
  }
  {
    LoopbackClient client;
    ASSERT_TRUE(client.Connect(server.Port()));
    ASSERT_TRUE(client.Send("{\"op\":\"ping\"}\n"));
    EXPECT_TRUE(ParseLine(client.ReadLine()).GetBool("ok", false));
  }

  // An oversized line draws one parse error and a close, with no
  // unbounded buffering server-side.
  {
    LoopbackClient client;
    ASSERT_TRUE(client.Connect(server.Port()));
    ASSERT_TRUE(client.Send(std::string(5000, 'a')));
    const JsonValue r = ParseLine(client.ReadLine());
    EXPECT_FALSE(r.GetBool("ok", true));
    EXPECT_EQ(r.GetString("error"), "parse");
    EXPECT_TRUE(client.PeerClosed());
  }

  // Wire shutdown: the response is flushed, then the host sees the
  // request and runs its drain.
  {
    LoopbackClient client;
    ASSERT_TRUE(client.Connect(server.Port()));
    ASSERT_TRUE(client.Send("{\"op\":\"shutdown\"}\n"));
    const JsonValue r = ParseLine(client.ReadLine());
    EXPECT_TRUE(r.GetBool("ok", false));
    EXPECT_TRUE(r.GetBool("draining", false));
  }
  EXPECT_TRUE(server.ShutdownRequested());
  EXPECT_GE(server.ConnectionsAccepted(), 5u);

  server.Stop();
  service.Drain();
}

}  // namespace
}  // namespace cenn
