/**
 * @file
 * Parameterized property sweeps across the library: dt-refinement
 * convergence per benchmark, fixed-point error scaling, boundary-
 * condition behaviour, trace/stats plumbing, and determinism across
 * repeated runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "arch/simulator.h"
#include "core/network.h"
#include "mapping/mapper.h"
#include "models/benchmark_model.h"
#include "models/heat.h"

namespace cenn {
namespace {

double
MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b)
{
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

// ---- dt-refinement convergence ---------------------------------------------

class DtConvergenceTest : public ::testing::TestWithParam<const char*>
{
};

TEST_P(DtConvergenceTest, HalvingDtRoughlyHalvesEulerError)
{
  // Run the mapped system to a fixed simulated time T with dt and
  // dt/2; the distance to a dt/4 "truth" must shrink consistently with
  // first-order convergence.
  ModelConfig mc;
  mc.rows = 12;
  mc.cols = 12;
  mc.seed = 11;
  const auto model = MakeModel(GetParam(), mc);
  NetworkSpec spec = Mapper::Map(model->System());

  const double t_final = spec.dt * 32.0;
  auto run_with = [&](double dt) {
    NetworkSpec s = spec;
    s.dt = dt;
    MultilayerCenn<double> net(s);
    net.Run(static_cast<std::uint64_t>(std::llround(t_final / dt)));
    return net.StateDoubles(0);
  };
  const auto coarse = run_with(spec.dt);
  const auto fine = run_with(spec.dt / 2.0);
  const auto truth = run_with(spec.dt / 4.0);

  const double e_coarse = MaxAbsDiff(coarse, truth);
  const double e_fine = MaxAbsDiff(fine, truth);
  // First-order: e(dt)/e(dt/2) ~ (dt vs dt/2 against dt/4 truth) ~ 3.
  EXPECT_LT(e_fine, e_coarse * 0.6);
  EXPECT_GT(e_coarse, 0.0);
}

INSTANTIATE_TEST_SUITE_P(SmoothModels, DtConvergenceTest,
                         ::testing::Values("heat", "fisher",
                                           "navier_stokes",
                                           "reaction_diffusion", "wave"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- fixed-point error scaling ----------------------------------------------

TEST(FixedErrorTest, GrowsSubLinearlyWithSteps)
{
  // Heat is contractive: fixed-point rounding noise must not blow up.
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  HeatModel model(mc);
  const NetworkSpec spec = Mapper::Map(model.System());

  auto error_after = [&](int steps) {
    MultilayerCenn<double> d(spec);
    MultilayerCenn<Fixed32> f(spec);
    d.Run(static_cast<std::uint64_t>(steps));
    f.Run(static_cast<std::uint64_t>(steps));
    return MaxAbsDiff(d.StateDoubles(0), f.StateDoubles(0));
  };
  const double e50 = error_after(50);
  const double e400 = error_after(400);
  EXPECT_LT(e400, 8.0 * e50 + 1e-4);
  EXPECT_LT(e400, 1e-2);
}

// ---- boundary conditions ------------------------------------------------------

class BoundaryTest : public ::testing::TestWithParam<BoundaryKind>
{
};

TEST_P(BoundaryTest, DiffusionStableUnderAllBoundaries)
{
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  HeatModel model(mc);
  NetworkSpec spec = Mapper::Map(model.System());
  spec.boundary.kind = GetParam();
  spec.boundary.value = 0.0;

  MultilayerCenn<double> net(spec);
  const std::vector<double> initial = net.StateDoubles(0);
  const double max0 = *std::max_element(initial.begin(), initial.end());
  net.Run(300);
  const auto field = net.StateDoubles(0);
  for (double v : field) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, max0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BoundaryTest,
                         ::testing::Values(BoundaryKind::kZeroFlux,
                                           BoundaryKind::kDirichlet,
                                           BoundaryKind::kPeriodic),
                         [](const auto& info) {
                           std::string name = BoundaryKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(BoundaryTest, DirichletDrainsHeatZeroFluxKeepsIt)
{
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  HeatModel model(mc);
  NetworkSpec spec = Mapper::Map(model.System());

  auto total_after = [&](BoundaryKind kind) {
    NetworkSpec s = spec;
    s.boundary = {kind, 0.0};
    MultilayerCenn<double> net(s);
    net.Run(400);
    double sum = 0.0;
    for (double v : net.StateDoubles(0)) {
      sum += v;
    }
    return sum;
  };
  const double kept = total_after(BoundaryKind::kZeroFlux);
  const double drained = total_after(BoundaryKind::kDirichlet);
  EXPECT_LT(drained, 0.7 * kept);
}

// ---- trace & stats plumbing -----------------------------------------------------

TEST(TraceTest, OneSamplePerStepAndConsistentWithReport)
{
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  const auto model = MakeModel("reaction_diffusion", mc);
  ArchSimulator sim(MakeProgram(*model), ArchConfig{});
  sim.EnableTrace();
  sim.Run(7);
  ASSERT_EQ(sim.Trace().size(), 7u);
  std::uint64_t total = 0;
  std::uint64_t compute = 0;
  for (const StepTrace& t : sim.Trace()) {
    EXPECT_GE(t.total_cycles, t.compute_cycles);
    EXPECT_GE(t.total_cycles, t.memory_cycles);
    total += t.total_cycles;
    compute += t.compute_cycles;
  }
  EXPECT_EQ(total, sim.Report().total_cycles);
  EXPECT_EQ(compute, sim.Report().compute_cycles);
}

TEST(TraceTest, StatsLinesContainEveryCounter)
{
  ModelConfig mc;
  mc.rows = 8;
  mc.cols = 8;
  const auto model = MakeModel("izhikevich", mc);
  ArchSimulator sim(MakeProgram(*model), ArchConfig{});
  sim.Run(3);
  const std::string stats = sim.Report().ToStatsLines(600e6);
  for (const char* key :
       {"sim.steps 3", "sim.total_cycles", "pe.mac_ops", "lut.l1_accesses",
        "buf.bank_reads", "dram.data_words"}) {
    EXPECT_NE(stats.find(key), std::string::npos) << key;
  }
}

// ---- determinism ------------------------------------------------------------------

TEST(DeterminismTest, IdenticalRunsProduceIdenticalResults)
{
  ModelConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  mc.seed = 1234;
  for (const char* name : {"izhikevich", "gray_scott"}) {
    const auto m1 = MakeModel(name, mc);
    const auto m2 = MakeModel(name, mc);
    const SolverProgram p1 = MakeProgram(*m1);
    const SolverProgram p2 = MakeProgram(*m2);
    ArchSimulator s1(p1, ArchConfig{});
    ArchSimulator s2(p2, ArchConfig{});
    s1.Run(40);
    s2.Run(40);
    EXPECT_EQ(s1.Report().total_cycles, s2.Report().total_cycles) << name;
    EXPECT_EQ(s1.StateDoubles(0), s2.StateDoubles(0)) << name;
  }
}

TEST(DeterminismTest, DifferentSeedsDifferentInitialConditions)
{
  ModelConfig a;
  a.rows = 16;
  a.cols = 16;
  a.seed = 1;
  ModelConfig b = a;
  b.seed = 2;
  const auto ma = MakeModel("heat", a);
  const auto mb = MakeModel("heat", b);
  EXPECT_NE(ma->System().equations[0].initial,
            mb->System().equations[0].initial);
}

}  // namespace
}  // namespace cenn
