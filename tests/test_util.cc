/**
 * @file
 * Unit tests for the utility layer: RNG determinism and distribution
 * sanity, streaming statistics, table rendering, CSV/PGM output and
 * CLI flag parsing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <filesystem>
#include <fstream>

#include "util/cli.h"
#include "util/logging.h"
#include "util/io.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace cenn {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge)
{
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.NextU64() == b.NextU64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds)
{
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard)
{
  Rng rng(11);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.Add(rng.Gaussian());
  }
  EXPECT_NEAR(stat.Mean(), 0.0, 0.02);
  EXPECT_NEAR(stat.Stddev(), 1.0, 0.02);
}

TEST(RngTest, NextBelowIsUnbiasedish)
{
  Rng rng(13);
  int counts[5] = {0};
  for (int i = 0; i < 50000; ++i) {
    ++counts[rng.NextBelow(5)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(RngTest, BernoulliEdgeCases)
{
  Rng rng(17);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Bernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits, 2500, 250);
}

TEST(RunningStatTest, BasicMoments)
{
  RunningStat s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.Count(), 4u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 1.25);  // population variance
  EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
}

TEST(RunningStatTest, MergeMatchesSequential)
{
  RunningStat all;
  RunningStat left;
  RunningStat right;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian(3.0, 2.0);
    all.Add(v);
    (i < 400 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), all.Count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-9);
  EXPECT_EQ(left.Min(), all.Min());
  EXPECT_EQ(left.Max(), all.Max());
}

TEST(RunningStatTest, EmptyIsSane)
{
  RunningStat s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(CompareFieldsTest, ComputesErrorSummary)
{
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 2.5, 2.0};
  const ErrorSummary e = CompareFields(a, b);
  EXPECT_EQ(e.count, 3u);
  EXPECT_DOUBLE_EQ(e.max_abs, 1.0);
  EXPECT_NEAR(e.mean_abs, 0.5, 1e-12);
  EXPECT_NEAR(e.rms, std::sqrt((0.0 + 0.25 + 1.0) / 3.0), 1e-12);
}

TEST(CompareFieldsTest, SizeMismatchDies)
{
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_DEATH(CompareFields(a, b), "size mismatch");
}

TEST(TextTableTest, AlignsColumns)
{
  TextTable t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "2.5"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name         value"), std::string::npos);
  EXPECT_NE(s.find("longer-name  2.5"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded)
{
  TextTable t({"a", "b", "c"});
  t.AddRow({"1"});
  EXPECT_NE(t.ToString().find("1"), std::string::npos);
}

TEST(TextTableTest, TooManyCellsDies)
{
  TextTable t({"a"});
  EXPECT_DEATH(t.AddRow({"1", "2"}), "cells");
}

TEST(IoTest, PgmRoundTripHeader)
{
  const std::string path = "/tmp/cenn_test_io.pgm";
  std::vector<double> field = {0.0, 0.5, 1.0, 0.25};
  ASSERT_TRUE(WritePgm(path, field, 2, 2, 0.0, 1.0));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  std::size_t w = 0;
  std::size_t h = 0;
  int maxval = 0;
  in >> w >> h >> maxval;
  EXPECT_EQ(w, 2u);
  EXPECT_EQ(h, 2u);
  EXPECT_EQ(maxval, 255);
  std::filesystem::remove(path);
}

TEST(IoTest, CsvWritesHeaderAndRows)
{
  const std::string path = "/tmp/cenn_test_io.csv";
  ASSERT_TRUE(WriteCsv(path, {"a", "b"}, {{1.0, 2.0}, {3.0, 4.0}}));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove(path);
}

TEST(IoTest, AsciiHeatmapShapes)
{
  std::vector<double> field(16, 0.0);
  field[5] = 1.0;
  const std::string s = AsciiHeatmap(field, 4, 4, 4);
  // Four lines of four characters.
  EXPECT_EQ(s.size(), 4u * 5u);
  EXPECT_NE(s.find('@'), std::string::npos);
}

TEST(CliTest, ParsesFlagsAndPositional)
{
  const char* argv[] = {"prog", "--alpha=1.5", "--name", "foo",
                        "positional", "--flag"};
  CliFlags flags(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 1.5);
  EXPECT_EQ(flags.GetString("name", ""), "foo");
  EXPECT_TRUE(flags.GetBool("flag", false));
  ASSERT_EQ(flags.Positional().size(), 1u);
  EXPECT_EQ(flags.Positional()[0], "positional");
  flags.Validate();
}

TEST(CliTest, DefaultsWhenAbsent)
{
  const char* argv[] = {"prog"};
  CliFlags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_EQ(flags.GetString("missing2", "d"), "d");
  EXPECT_FALSE(flags.GetBool("missing3", false));
}

TEST(CliTest, BadIntegerDies)
{
  const char* argv[] = {"prog", "--n=abc"};
  CliFlags flags(2, const_cast<char**>(argv));
  EXPECT_DEATH(flags.GetInt("n", 0), "expects an integer");
}

TEST(CliTest, UnqueriedFlagDiesOnValidate)
{
  const char* argv[] = {"prog", "--typo=1"};
  CliFlags flags(2, const_cast<char**>(argv));
  EXPECT_DEATH(flags.Validate(), "unknown flag");
}

TEST(LoggingTest, LogLevelRoundTrips)
{
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kSilent);
  EXPECT_EQ(GetLogLevel(), LogLevel::kSilent);
  SetLogLevel(before);
}

TEST(LoggingTest, FormatConcatenatesStreamably)
{
  EXPECT_EQ(internal::Format("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(internal::Format(), "");
}

TEST(LoggingTest, FatalExitsWithCodeOne)
{
  EXPECT_EXIT(CENN_FATAL("user error ", 42),
              ::testing::ExitedWithCode(1), "user error 42");
}

TEST(LoggingTest, PanicAborts)
{
  EXPECT_DEATH(CENN_PANIC("bug"), "panic: bug");
}

TEST(LoggingTest, AssertPassesAndFails)
{
  CENN_ASSERT(1 + 1 == 2, "fine");
  EXPECT_DEATH(CENN_ASSERT(false, "ctx ", 7), "assertion failed");
}

TEST(IoTest, PgmHandlesNonFiniteValues)
{
  const std::string path = "/tmp/cenn_test_nan.pgm";
  std::vector<double> field = {0.0, std::nan(""), 1.0,
                               std::numeric_limits<double>::infinity()};
  ASSERT_TRUE(WritePgm(path, field, 2, 2));
  std::filesystem::remove(path);
}

TEST(IoTest, PgmSizeMismatchDies)
{
  std::vector<double> field = {0.0};
  EXPECT_DEATH(WritePgm("/tmp/x.pgm", field, 2, 2), "field size");
}

TEST(IoTest, AsciiHeatmapEmptyAndDegenerate)
{
  EXPECT_EQ(AsciiHeatmap({}, 0, 0), "");
  std::vector<double> flat(9, 5.0);  // constant field: no div-by-zero
  const std::string s = AsciiHeatmap(flat, 3, 3, 3);
  EXPECT_EQ(s.size(), 3u * 4u);
}

TEST(IoTest, AsciiHeatmapDownsamples)
{
  std::vector<double> field(64 * 64, 0.0);
  const std::string s = AsciiHeatmap(field, 64, 64, 8);
  EXPECT_EQ(s.size(), 8u * 9u);  // 8 rows of 8 chars + newlines
}

TEST(TextTableTest, NumFormats)
{
  EXPECT_EQ(TextTable::Num(3.14159), "3.142");
  EXPECT_EQ(TextTable::Num(3.14159, "%.1f"), "3.1");
  EXPECT_EQ(TextTable::Int(-42), "-42");
}

// Regression: merging an empty accumulator must be a no-op, and
// merging into an empty one must copy `other` verbatim (including
// min/max, which start at +/-inf in the empty state).
TEST(RunningStatTest, MergeEmptyOtherIsNoOp)
{
  RunningStat s;
  s.Add(1.0);
  s.Add(3.0);
  const RunningStat empty;
  s.Merge(empty);
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 3.0);
}

TEST(RunningStatTest, MergeIntoEmptyCopies)
{
  RunningStat other;
  other.Add(-2.0);
  other.Add(4.0);
  RunningStat s;
  s.Merge(other);
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_DOUBLE_EQ(s.Mean(), 1.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 9.0);
  EXPECT_DOUBLE_EQ(s.Min(), -2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
}

TEST(RunningStatTest, MergeTwoEmptiesStaysEmpty)
{
  RunningStat a;
  const RunningStat b;
  a.Merge(b);
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_EQ(a.Mean(), 0.0);
  EXPECT_EQ(a.Variance(), 0.0);
}

TEST(HistogramTest, BucketsAndEdges)
{
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.NumBins(), 5);
  EXPECT_DOUBLE_EQ(h.BinWidth(), 2.0);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinLow(4), 8.0);

  h.Add(-1.0);   // underflow
  h.Add(0.0);    // bin 0 (lo is inclusive)
  h.Add(1.99);   // bin 0
  h.Add(2.0);    // bin 1
  h.Add(9.99);   // bin 4
  h.Add(10.0);   // overflow (hi is exclusive)
  h.Add(25.0);   // overflow

  EXPECT_EQ(h.Count(), 7u);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 2u);
  EXPECT_EQ(h.BinCount(0), 2u);
  EXPECT_EQ(h.BinCount(1), 1u);
  EXPECT_EQ(h.BinCount(2), 0u);
  EXPECT_EQ(h.BinCount(4), 1u);
}

TEST(HistogramTest, MomentsAreExactDespiteBucketing)
{
  Histogram h(0.0, 1.0, 2);  // coarse buckets
  h.Add(0.1);
  h.Add(0.2);
  h.Add(0.6);
  EXPECT_EQ(h.Moments().Count(), 3u);
  EXPECT_NEAR(h.Moments().Mean(), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(h.Moments().Min(), 0.1);
  EXPECT_DOUBLE_EQ(h.Moments().Max(), 0.6);
}

TEST(HistogramTest, AddNEquivalentToRepeatedAdd)
{
  Histogram a(0.0, 4.0, 4);
  Histogram b(0.0, 4.0, 4);
  a.AddN(1.5, 10);
  for (int i = 0; i < 10; ++i) {
    b.Add(1.5);
  }
  EXPECT_EQ(a.Count(), b.Count());
  EXPECT_EQ(a.BinCount(1), b.BinCount(1));
  EXPECT_DOUBLE_EQ(a.Moments().Mean(), b.Moments().Mean());
}

TEST(HistogramTest, MergeAndReset)
{
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.Add(1.0);
  b.Add(9.0);
  b.Add(-1.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_EQ(a.BinCount(0), 1u);
  EXPECT_EQ(a.BinCount(4), 1u);
  EXPECT_EQ(a.Underflow(), 1u);
  a.Reset();
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_EQ(a.BinCount(0), 0u);
  EXPECT_EQ(a.Underflow(), 0u);
  EXPECT_EQ(a.NumBins(), 5);  // geometry kept
}

TEST(HistogramTest, MergeGeometryMismatchDies)
{
  Histogram a(0.0, 10.0, 5);
  const Histogram b(0.0, 10.0, 4);
  EXPECT_DEATH(a.Merge(b), "geometry");
}

TEST(HistogramTest, BadGeometryDies)
{
  EXPECT_DEATH(Histogram(1.0, 1.0, 4), "");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "");
}

TEST(HistogramTest, PercentileInterpolates)
{
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.Percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.Percentile(0.99), 99.0, 1.5);
  EXPECT_GE(h.Percentile(0.0), 0.0);
  EXPECT_LE(h.Percentile(1.0), 100.0);
  const Histogram empty(0.0, 1.0, 2);
  EXPECT_EQ(empty.Percentile(0.5), 0.0);
}

TEST(HistogramTest, ToStringListsBuckets)
{
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string s = h.ToString(10);
  EXPECT_NE(s.find('['), std::string::npos);   // bucket edge rows
  EXPECT_NE(s.find('#'), std::string::npos);   // ASCII bars
  // The fuller first bucket gets the longer bar.
  EXPECT_NE(s.find("##"), std::string::npos);
}

TEST(HistogramTest, EmptyHistogramIsSaneEverywhere)
{
  const Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Underflow(), 0u);
  EXPECT_EQ(h.Overflow(), 0u);
  for (int bin = 0; bin < h.NumBins(); ++bin) {
    EXPECT_EQ(h.BinCount(bin), 0u);
  }
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(1.0), 0.0);
  EXPECT_EQ(h.Moments().Count(), 0u);
  EXPECT_EQ(h.Moments().Mean(), 0.0);
  // Rendering an empty histogram must not divide by a zero peak.
  EXPECT_FALSE(h.ToString(10).empty());
}

TEST(HistogramTest, SingleSampleHasExactMomentsAndBucket)
{
  Histogram h(0.0, 10.0, 5);
  h.Add(2.5);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.BinCount(1), 1u);  // [2, 4)
  EXPECT_EQ(h.Underflow(), 0u);
  EXPECT_EQ(h.Overflow(), 0u);
  EXPECT_EQ(h.Moments().Mean(), 2.5);
  EXPECT_EQ(h.Moments().Min(), 2.5);
  EXPECT_EQ(h.Moments().Max(), 2.5);
  EXPECT_EQ(h.Moments().Variance(), 0.0);
  // Any percentile lands inside the one occupied bucket.
  EXPECT_GE(h.Percentile(0.5), 2.0);
  EXPECT_LE(h.Percentile(0.5), 4.0);
}

TEST(HistogramTest, OutOfRangeSamplesLandInOverflowCounters)
{
  Histogram h(0.0, 1.0, 2);
  h.Add(-0.5);            // below lo
  h.Add(1.0);             // hi itself is exclusive: overflow
  h.Add(100.0);           // far overflow
  h.Add(0.999);           // top bucket, not overflow
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 2u);
  EXPECT_EQ(h.BinCount(0), 0u);
  EXPECT_EQ(h.BinCount(1), 1u);
  EXPECT_EQ(h.Count(), 4u);  // under/overflow count toward the total
  // Moments see the exact values, not the clamped buckets.
  EXPECT_EQ(h.Moments().Min(), -0.5);
  EXPECT_EQ(h.Moments().Max(), 100.0);
  // Percentiles clamp out-of-range mass to the range edges.
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(1.0), 1.0);
  // The under/overflow rows show up in the rendering.
  const std::string s = h.ToString(10);
  EXPECT_NE(s.find('<'), std::string::npos);
  EXPECT_NE(s.find(">="), std::string::npos);
}

TEST(LoggingTest, WarnOnceFiresExactlyOnce)
{
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 5; ++i) {
    CENN_WARN_ONCE("once-message");
  }
  const std::string err = testing::internal::GetCapturedStderr();
  SetLogLevel(before);
  EXPECT_EQ(err.find("once-message"), err.rfind("once-message"));
  EXPECT_NE(err.find("once-message"), std::string::npos);
}

TEST(LoggingTest, WarnEveryNSamples)
{
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 10; ++i) {
    CENN_WARN_EVERY_N(4, "sampled-message");
  }
  const std::string err = testing::internal::GetCapturedStderr();
  SetLogLevel(before);
  // Occurrences 1, 5 and 9 fire: three lines, each marked as sampled.
  std::size_t hits = 0;
  for (std::size_t pos = err.find("sampled-message");
       pos != std::string::npos;
       pos = err.find("sampled-message", pos + 1)) {
    ++hits;
  }
  EXPECT_EQ(hits, 3u);
  EXPECT_NE(err.find("(logged 1/4)"), std::string::npos);
}

TEST(LoggingTest, DebugOnceSuppressedBelowDebugLevel)
{
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  CENN_DEBUG_ONCE("hidden-debug");
  const std::string err = testing::internal::GetCapturedStderr();
  SetLogLevel(before);
  EXPECT_EQ(err.find("hidden-debug"), std::string::npos);
}

TEST(LoggingTest, SetLogLevelIsAtomicallyReadable)
{
  // Smoke check that the getter reflects the setter immediately;
  // the atomic store/load pair is the thread-safety contract.
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInform);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInform);
  SetLogLevel(before);
}

}  // namespace
}  // namespace cenn
