/**
 * @file
 * cenn_batch — runs a manifest of solver scenarios across a worker
 * pool, one line of the manifest at a time becoming one SolverSession
 * job with durable artifacts (checkpoint, done marker, stat dump).
 *
 * The scheduler is deterministic (priority then manifest order; no
 * work stealing) and every job's state evolution is bit-identical
 * regardless of --threads or per-job shards, so a batch is a
 * reproducible experiment, not just a throughput device.
 *
 * Resume: point --resume-from at a previous output directory and
 * finished jobs are skipped via their done markers while interrupted
 * jobs continue from their checkpoints. --max-steps-per-job bounds
 * each invocation's work, which makes incremental draining of a big
 * manifest (or deterministic interruption in tests) possible.
 *
 * Fault tolerance (docs/robustness.md): --guard attaches a numerical
 * health guard to every job, --max-retries re-runs a crashed or
 * guard-tripped job from its last good checkpoint, and --fault-inject
 * deterministically injects crashes / state corruption to exercise
 * that path. The exit code is 1 when any job ends failed or diverged.
 *
 * Execution policy: per-job `exec=` manifest keys refine the
 * frontend-level default given by --exec (e.g. --exec=soa:simd runs
 * every job on SIMD SoA kernels unless a job overrides a field). The
 * legacy manifest keys engine=/precision=/memory=/kernel_path=/shards=
 * still parse as deprecated aliases. --threads stays the *pool* width
 * here (jobs run concurrently); per-job band shards come from the
 * policy's shards= field.
 *
 * Examples:
 *   cenn_batch --manifest=jobs.txt --out=batch_out --threads=4
 *   cenn_batch --manifest=jobs.txt --out=simd --exec=soa:simd:shards=2
 *   cenn_batch --manifest=jobs.txt --out=batch_out --resume-from=batch_out
 *   cenn_batch --manifest=jobs.txt --out=sweep --csv=sweep/results.csv \
 *              --stats-out=sweep/stats.txt
 *   cenn_batch --manifest=jobs.txt --out=ft --guard --checkpoint-every=50 \
 *              --max-retries=2 --fault-inject=crash@120,flip@300
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/stat_registry.h"
#include "obs/stats_io.h"
#include "runtime/batch_manifest.h"
#include "runtime/batch_runner.h"
#include "util/cli.h"
#include "util/common_options.h"
#include "util/logging.h"
#include "util/table.h"

namespace cenn {
namespace {

/** The shared flags cenn_batch honors (--exec sets the default job
 *  policy; per-job manifest keys refine it). */
constexpr unsigned kBatchFlagGroups = kEngineFlags | kThreadsFlag |
                                      kStatsFlags | kGuardFlags |
                                      kMetricsFlags;

void
PrintUsage()
{
  std::printf(
      "usage: cenn_batch --manifest=FILE --out=DIR [options]\n\n"
      "shared options:\n%s"
      "\nbatch options:\n"
      "  --manifest=FILE          job manifest (see docs/runtime.md)\n"
      "  --out=DIR                output directory for artifacts\n"
      "  --queue-capacity=N       job-queue bound (default 64)\n"
      "  --seed=N                 base seed for unseeded jobs (42)\n"
      "  --max-steps-per-job=N    per-invocation step budget (0 = all)\n"
      "  --checkpoint-every=N     default auto-checkpoint interval\n"
      "  --resume-from=DIR        reuse .done/.ckpt artifacts in DIR\n"
      "                           (must equal --out)\n"
      "  --csv=FILE               write per-job results as CSV\n"
      "  --max-retries=N          extra attempts after a crash or guard\n"
      "                           trip (default 0 = fail fast)\n"
      "  --retry-backoff-ms=N     base retry delay, doubled per attempt\n"
      "  --fault-inject=SPEC      deterministic fault injection, e.g.\n"
      "                           crash@40x2,flip@150 (docs/robustness.md)\n",
      CommonOptionsHelp(kBatchFlagGroups).c_str());
}

int
BatchMain(int argc, char** argv)
{
  CliFlags flags(argc, argv);
  const std::string manifest = flags.GetString("manifest", "");
  const bool help = flags.GetBool("help", false);
  if (help || manifest.empty()) {
    PrintUsage();
    return manifest.empty() && !help ? 1 : 0;
  }

  CommonOptions defaults;
  defaults.threads = 2;
  const CommonOptions copts =
      ParseCommonOptions(flags, kBatchFlagGroups, defaults);

  BatchOptions options;
  options.out_dir = flags.GetString("out", "");
  options.num_threads = copts.threads;
  options.queue_capacity =
      static_cast<std::size_t>(flags.GetInt("queue-capacity", 64));
  options.base_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  options.max_steps_per_job =
      static_cast<std::uint64_t>(flags.GetInt("max-steps-per-job", 0));
  options.checkpoint_every =
      static_cast<std::uint64_t>(flags.GetInt("checkpoint-every", 0));
  options.max_retries = static_cast<int>(flags.GetInt("max-retries", 0));
  options.retry_backoff_ms =
      static_cast<int>(flags.GetInt("retry-backoff-ms", 0));
  options.fault_inject = flags.GetString("fault-inject", "");
  // --metrics-out names a directory here: each running job streams
  // <dir>/<name>.metrics.jsonl (obs/metrics_emitter.h).
  options.metrics_dir = copts.metrics_out;
  options.metrics_interval_ms = copts.metrics_interval_ms;
  options.guard_enabled = copts.guard;
  options.guard.max_abs = copts.guard_max_abs;
  options.guard.max_rms = copts.guard_max_rms;
  options.guard.max_sat_events = copts.guard_max_sat;
  options.guard.check_every = copts.guard_check_every;
  const std::string resume_from = flags.GetString("resume-from", "");
  const std::string csv = flags.GetString("csv", "");
  const std::string stats_out = copts.stats_out;
  flags.Validate();

  if (options.out_dir.empty()) {
    CENN_FATAL("--out is required");
  }
  if (!resume_from.empty()) {
    if (resume_from != options.out_dir) {
      CENN_FATAL("--resume-from must name the --out directory (artifacts "
                 "live there); got '", resume_from, "' vs '",
                 options.out_dir, "'");
    }
    options.resume = true;
  }

  // Frontend-level default policy: every manifest job starts from the
  // --exec value and refines it field-wise with its own keys.
  JobSpec manifest_defaults;
  manifest_defaults.exec = copts.exec;
  const auto jobs = LoadManifestFile(manifest, &manifest_defaults);
  std::printf("manifest %s: %zu jobs, %d workers%s\n", manifest.c_str(),
              jobs.size(), options.num_threads,
              options.resume ? " (resuming)" : "");

  StatRegistry registry;
  BatchRunner runner(jobs, options);
  const auto results = runner.RunAll(&registry);

  TextTable table({"job", "model", "exec", "status", "tries", "steps",
                   "ran", "checksum", "ms"});
  for (const JobResult& r : results) {
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(r.checksum));
    char ms[32];
    std::snprintf(ms, sizeof(ms), "%.1f", r.wall_ms);
    table.AddRow({r.name, r.model, r.exec, JobStatusName(r.status),
                  std::to_string(r.attempts), std::to_string(r.steps_done),
                  std::to_string(r.steps_executed), checksum, ms});
  }
  std::printf("\n%s", table.ToString().c_str());

  if (!csv.empty()) {
    std::ofstream out(csv);
    if (out) {
      out << BatchRunner::ResultsCsv(results);
      std::printf("wrote %s\n", csv.c_str());
    } else {
      CENN_WARN("cannot open csv output file '", csv, "'");
    }
  }
  if (!stats_out.empty() && WriteStatsFile(registry, stats_out)) {
    std::printf("wrote %zu stats to %s\n", registry.Size(),
                stats_out.c_str());
  }

  int interrupted = 0;
  int failures = 0;
  for (const JobResult& r : results) {
    interrupted += r.status == JobStatus::kInterrupted ? 1 : 0;
    failures += JobStatusIsFailure(r.status) ? 1 : 0;
  }
  if (interrupted > 0) {
    std::printf("%d job(s) interrupted; rerun with --resume-from=%s to "
                "continue\n", interrupted, options.out_dir.c_str());
  }
  if (failures > 0) {
    std::printf("%d job(s) failed or diverged (see per-job warnings "
                "above)\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cenn

int
main(int argc, char** argv)
{
  return cenn::BatchMain(argc, argv);
}
