# Fault-tolerance smoke test for cenn_batch: a fault-free reference
# run records per-job checksums, then the same manifest is run with
# injected faults (a simulated crash at step 20 and a state-bit flip
# at step 40, in every job) under --guard --max-retries=2. The batch
# must exit 0 with every job recovered/retried to the reference
# checksum — corrupt state must never survive into a final state or a
# checkpoint.
#
# The faulted run also streams per-job live metrics; each stream must
# validate under cenn_metrics_check (each retry attempt truncates and
# restarts its job's stream, so the surviving file is the last
# attempt's complete start..exit record).
#
# Invoked by ctest as:
#   cmake -DCENN_BATCH=<exe> -DCENN_METRICS_CHECK=<exe> -DWORK_DIR=<dir>
#         -P cenn_batch_faults_smoke.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

file(WRITE "${WORK_DIR}/manifest.txt"
"# fault-tolerance smoke manifest
model=heat
name=ft_heat
rows=12
cols=12
steps=60

model=reaction_diffusion
name=ft_rd
rows=12
cols=12
steps=60
engine=double
")

execute_process(
    COMMAND "${CENN_BATCH}" --manifest=${WORK_DIR}/manifest.txt
            --out=${WORK_DIR}/ref --threads=2
            --csv=${WORK_DIR}/ref.csv
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out_ref
    ERROR_VARIABLE err_ref)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference run failed (${rc}):\n${out_ref}\n${err_ref}")
endif()

execute_process(
    COMMAND "${CENN_BATCH}" --manifest=${WORK_DIR}/manifest.txt
            --out=${WORK_DIR}/ft --threads=2
            --checkpoint-every=10 --guard --guard-check-every=1
            --max-retries=2 --retry-backoff-ms=1
            --fault-inject=crash@20,flip@40
            --metrics-out=${WORK_DIR}/ft/metrics --metrics-interval-ms=5
            --csv=${WORK_DIR}/ft.csv
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out_ft
    ERROR_VARIABLE err_ft)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "faulted run failed (${rc}):\n${out_ft}\n${err_ft}")
endif()

file(READ "${WORK_DIR}/ref.csv" ref_csv)
file(READ "${WORK_DIR}/ft.csv" ft_csv)

foreach(job ft_heat ft_rd)
  # CSV row: name,model,engine,status,attempts,steps_done,
  #          steps_executed,checksum,...
  string(REGEX MATCH
         "${job},[^,]+,[^,]+,([a-z]+),([0-9]+),([0-9]+),[0-9]+,([0-9]+),"
         ref_row "${ref_csv}")
  if(NOT ref_row)
    message(FATAL_ERROR "no reference row for ${job}:\n${ref_csv}")
  endif()
  set(ref_checksum "${CMAKE_MATCH_4}")

  string(REGEX MATCH
         "${job},[^,]+,[^,]+,([a-z]+),([0-9]+),([0-9]+),[0-9]+,([0-9]+),"
         ft_row "${ft_csv}")
  if(NOT ft_row)
    message(FATAL_ERROR "no faulted row for ${job}:\n${ft_csv}")
  endif()
  set(ft_status "${CMAKE_MATCH_1}")
  set(ft_attempts "${CMAKE_MATCH_2}")
  set(ft_checksum "${CMAKE_MATCH_4}")

  if(NOT ft_status MATCHES "^(recovered|retried)$")
    message(FATAL_ERROR
            "${job}: expected recovered/retried, got '${ft_status}':\n${ft_csv}")
  endif()
  if(ft_attempts LESS 2)
    message(FATAL_ERROR "${job}: expected >= 2 attempts, got ${ft_attempts}")
  endif()
  if(NOT ft_checksum STREQUAL ref_checksum)
    message(FATAL_ERROR
            "${job}: checksum ${ft_checksum} != fault-free ${ref_checksum}")
  endif()
  message(STATUS
          "${job}: ${ft_status} after ${ft_attempts} attempts, "
          "checksum matches fault-free run")
endforeach()

# Per-job metrics streams from the faulted run: tiny jobs may yield
# only the start/exit bookends, so just require a well-formed stream
# carrying the phase-timing and LUT families (these exist for every
# engine; kernels.traffic.* is soa-only and the manifest runs the
# functional engines).
foreach(job ft_heat ft_rd)
  execute_process(
      COMMAND "${CENN_METRICS_CHECK}"
              ${WORK_DIR}/ft/metrics/${job}.metrics.jsonl
              --require=shard0.,lut.interp.,health.
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out_chk
      ERROR_VARIABLE err_chk)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "metrics check failed for ${job} (${rc}):\n${out_chk}\n${err_chk}")
  endif()
endforeach()

message(STATUS "SMOKE_PASS: faulted batch recovered to fault-free checksums")
