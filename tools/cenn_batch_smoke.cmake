# Smoke test for cenn_batch: run a two-job manifest, then resume into
# the same directory and require both jobs to be served from their
# done markers (no recomputation).
#
# Invoked by ctest as:
#   cmake -DCENN_BATCH=<exe> -DWORK_DIR=<dir> -P cenn_batch_smoke.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

file(WRITE "${WORK_DIR}/manifest.txt"
"# smoke manifest
model=heat
name=smoke_heat
rows=12
cols=12
steps=25

model=reaction_diffusion
name=smoke_rd
rows=12
cols=12
steps=20
engine=double
shards=2
")

execute_process(
    COMMAND "${CENN_BATCH}" --manifest=${WORK_DIR}/manifest.txt
            --out=${WORK_DIR}/out --threads=2
            --csv=${WORK_DIR}/results.csv
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out_fresh
    ERROR_VARIABLE err_fresh)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fresh run failed (${rc}):\n${out_fresh}\n${err_fresh}")
endif()

foreach(artifact out/smoke_heat.done out/smoke_rd.done
        out/smoke_heat.stats.txt results.csv)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "missing artifact ${artifact} after fresh run")
  endif()
endforeach()

execute_process(
    COMMAND "${CENN_BATCH}" --manifest=${WORK_DIR}/manifest.txt
            --out=${WORK_DIR}/out --resume-from=${WORK_DIR}/out
            --csv=${WORK_DIR}/results_resume.csv
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out_resume
    ERROR_VARIABLE err_resume)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume run failed (${rc}):\n${out_resume}\n${err_resume}")
endif()

file(READ "${WORK_DIR}/results_resume.csv" resume_csv)
string(REGEX MATCHALL "cached" cached_rows "${resume_csv}")
list(LENGTH cached_rows num_cached)
if(NOT num_cached EQUAL 2)
  message(FATAL_ERROR
          "expected 2 cached jobs on resume, got ${num_cached}:\n${resume_csv}")
endif()
