/**
 * @file
 * cenn_client — command-line client for a running cenn_serve.
 *
 * One invocation performs one cenn.serve.v1 op (submit / status /
 * result / cancel / snapshot / stats / ping / shutdown) against
 * --host:--port and prints the server's JSON response line on stdout,
 * so scripts can pipe it into any JSON tool. The exit code reflects
 * the outcome: 0 on an ok response, 1 on a wire error or when a
 * retrieved result ended "failed" or "diverged" (mirrors cenn_batch).
 *
 * Submits take the job spec as manifest-grammar key=value tokens:
 *
 *   cenn_client --port=7070 --op=submit --tenant=alice \
 *               --spec="model=heat rows=32 cols=32 steps=200 seed=7"
 *   cenn_client --port=7070 --op=result --job=j1 --wait
 *   cenn_client --port=7070 --op=submit --manifest=jobs.txt   # many jobs
 *
 * --wait on submit chains straight into a blocking result fetch and
 * prints both response lines.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/json.h"
#include "serve/wire.h"
#include "util/cli.h"
#include "util/logging.h"

namespace cenn {
namespace {

void
PrintUsage()
{
  std::printf(
      "usage: cenn_client --port=N [--host=ADDR] --op=OP [op options]\n\n"
      "ops and their options:\n"
      "  --op=ping                liveness + queue gauges (default op)\n"
      "  --op=submit              --tenant=NAME (default \"anon\")\n"
      "                           --spec=\"key=value ...\" (manifest grammar;\n"
      "                             quote values with spaces: "
      "model_source='...')\n"
      "                           --name=JOB     optional job name\n"
      "                           --fault-inject=SPEC  e.g. crash@40x2\n"
      "                           --manifest=FILE  submit every line instead\n"
      "                           --wait         block for the result too\n"
      "  --op=status              --job=ID\n"
      "  --op=result              --job=ID [--wait] [--timeout-ms=N]\n"
      "  --op=cancel              --job=ID\n"
      "  --op=snapshot            --job=ID [--layer=N]\n"
      "  --op=stats               full server stat dump\n"
      "  --op=shutdown            ask the server to drain and exit\n");
}

/** Blocking line-oriented client connection. */
class Connection
{
  public:
    ~Connection()
    {
      if (fd_ >= 0) {
        ::close(fd_);
      }
    }

    bool Open(const std::string& host, int port, std::string* error)
    {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
      }
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        *error = "bad host '" + host + "'";
        return false;
      }
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
        *error = std::string("connect: ") + std::strerror(errno);
        return false;
      }
      return true;
    }

    /** Sends one request line, reads one response line. */
    bool RoundTrip(const std::string& request, std::string* response,
                   std::string* error)
    {
      const std::string line = request + "\n";
      std::size_t sent = 0;
      while (sent < line.size()) {
        const ssize_t n =
            ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) {
            continue;
          }
          *error = std::string("send: ") + std::strerror(errno);
          return false;
        }
        sent += static_cast<std::size_t>(n);
      }
      std::size_t newline;
      while ((newline = buffer_.find('\n')) == std::string::npos) {
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR) {
          continue;
        }
        if (n <= 0) {
          *error = "server closed the connection";
          return false;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
      }
      *response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

/**
 * Renders "key=value key=value ..." tokens as the nested "spec" JSON
 * object; all values travel as strings (the server's spec builder
 * parses the manifest grammar). A value may contain '- or "-quoted
 * runs whose spaces are kept verbatim — that is how an inline
 * scenario travels:
 *
 *   --spec="model_source='scenario x; dt 0.1; ...' rows=16 seed=7"
 */
bool
SpecTokensToJson(const std::string& tokens, const std::string& name,
                 std::string* json, std::string* error)
{
  JsonWriter spec;
  if (!name.empty()) {
    spec.String("name", name);
  }
  const std::size_t n = tokens.size();
  std::size_t i = 0;
  bool any = false;
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (i < n) {
    while (i < n && is_space(tokens[i])) {
      ++i;
    }
    if (i >= n) {
      break;
    }
    const std::size_t start = i;
    while (i < n && tokens[i] != '=' && !is_space(tokens[i])) {
      ++i;
    }
    if (i == start || i >= n || tokens[i] != '=') {
      *error = "bad spec token '" + tokens.substr(start, i - start) +
               "' (want key=value)";
      return false;
    }
    const std::string key = tokens.substr(start, i - start);
    ++i;
    std::string value;
    while (i < n && !is_space(tokens[i])) {
      const char c = tokens[i];
      if (c == '\'' || c == '"') {
        const std::size_t close = tokens.find(c, i + 1);
        if (close == std::string::npos) {
          *error = std::string("unterminated ") + c + "-quoted value for '" +
                   key + "'";
          return false;
        }
        value.append(tokens, i + 1, close - i - 1);
        i = close + 1;
      } else {
        value += c;
        ++i;
      }
    }
    spec.String(key, value);
    any = true;
  }
  if (!any) {
    *error = "empty --spec (want \"model=heat rows=16 ...\")";
    return false;
  }
  *json = spec.Finish();
  return true;
}

/** Parses a response line; exits loudly when the server talks garbage. */
JsonValue
ParseResponse(const std::string& line)
{
  JsonValue value;
  std::string error;
  if (!ParseJson(line, &value, &error) || !value.IsObject()) {
    CENN_FATAL("cenn_client: unparseable server response: ", error,
               " in: ", line);
  }
  return value;
}

/**
 * Runs one submit (+ optional blocking result fetch). Prints every
 * response line. Returns the process exit code.
 */
int
SubmitOne(Connection& conn, const std::string& tenant,
          const std::string& spec_json, const std::string& fault_inject,
          bool wait, std::int64_t timeout_ms)
{
  JsonWriter request;
  request.String("op", "submit").String("tenant", tenant);
  request.Raw("spec", spec_json);
  if (!fault_inject.empty()) {
    request.String("fault_inject", fault_inject);
  }
  std::string response;
  std::string error;
  if (!conn.RoundTrip(request.Finish(), &response, &error)) {
    CENN_FATAL("cenn_client: ", error);
  }
  std::printf("%s\n", response.c_str());
  const JsonValue parsed = ParseResponse(response);
  if (!parsed.GetBool("ok", false)) {
    return 1;
  }
  if (!wait) {
    return 0;
  }
  const std::string job = parsed.GetString("job");
  const std::string result_request = JsonWriter()
                                         .String("op", "result")
                                         .String("job", job)
                                         .Bool("wait", true)
                                         .Int("timeout_ms", timeout_ms)
                                         .Finish();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (!conn.RoundTrip(result_request, &response, &error)) {
      CENN_FATAL("cenn_client: ", error);
    }
    const JsonValue result = ParseResponse(response);
    if (result.GetBool("ok", false)) {
      std::printf("%s\n", response.c_str());
      const std::string status = result.GetString("status");
      return status == "failed" || status == "diverged" ? 1 : 0;
    }
    if (result.GetString("error") != "busy" ||
        std::chrono::steady_clock::now() >= deadline) {
      std::printf("%s\n", response.c_str());
      return 1;
    }
  }
}

int
ClientMain(int argc, char** argv)
{
  CliFlags flags(argc, argv);
  const bool help = flags.GetBool("help", false);
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (help || port == 0) {
    PrintUsage();
    return port == 0 && !help ? 1 : 0;
  }
  const std::string host = flags.GetString("host", "127.0.0.1");
  const std::string op = flags.GetString("op", "ping");
  const std::string tenant = flags.GetString("tenant", "anon");
  const std::string spec = flags.GetString("spec", "");
  const std::string name = flags.GetString("name", "");
  const std::string manifest = flags.GetString("manifest", "");
  const std::string fault_inject = flags.GetString("fault-inject", "");
  const std::string job = flags.GetString("job", "");
  const std::int64_t layer = flags.GetInt("layer", 0);
  const bool wait = flags.GetBool("wait", false);
  const std::int64_t timeout_ms = flags.GetInt("timeout-ms", 60000);
  flags.Validate();

  Connection conn;
  std::string error;
  if (!conn.Open(host, port, &error)) {
    CENN_FATAL("cenn_client: cannot reach ", host, ":", port, ": ", error);
  }

  if (op == "submit") {
    if (!manifest.empty()) {
      // Submit every manifest line as its own job over one connection.
      std::ifstream in(manifest);
      if (!in) {
        CENN_FATAL("cenn_client: cannot open manifest '", manifest, "'");
      }
      std::string line;
      int exit_code = 0;
      bool submitted_any = false;
      while (std::getline(in, line)) {
        const std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#') {
          continue;
        }
        std::string spec_json;
        if (!SpecTokensToJson(line, "", &spec_json, &error)) {
          CENN_FATAL("cenn_client: ", manifest, ": ", error);
        }
        exit_code |= SubmitOne(conn, tenant, spec_json, fault_inject, wait,
                               timeout_ms);
        submitted_any = true;
      }
      if (!submitted_any) {
        CENN_FATAL("cenn_client: manifest '", manifest, "' has no jobs");
      }
      return exit_code;
    }
    std::string spec_json;
    if (!SpecTokensToJson(spec, name, &spec_json, &error)) {
      CENN_FATAL("cenn_client: ", error);
    }
    return SubmitOne(conn, tenant, spec_json, fault_inject, wait,
                     timeout_ms);
  }

  // Single-line ops share one shape: build, send, print, exit on ok.
  JsonWriter request;
  request.String("op", op);
  if (op == "status" || op == "result" || op == "cancel" ||
      op == "snapshot") {
    if (job.empty()) {
      CENN_FATAL("cenn_client: --op=", op, " needs --job=ID");
    }
    request.String("job", job);
  }
  if (op == "snapshot") {
    request.Int("layer", layer);
  }
  if (op == "result" && wait) {
    request.Bool("wait", true).Int("timeout_ms", timeout_ms);
  }
  std::string response;
  if (!conn.RoundTrip(request.Finish(), &response, &error)) {
    CENN_FATAL("cenn_client: ", error);
  }
  std::printf("%s\n", response.c_str());
  const JsonValue parsed = ParseResponse(response);
  if (!parsed.GetBool("ok", false)) {
    return 1;
  }
  if (op == "result") {
    const std::string status = parsed.GetString("status");
    return status == "failed" || status == "diverged" ? 1 : 0;
  }
  return 0;
}

}  // namespace
}  // namespace cenn

int
main(int argc, char** argv)
{
  return cenn::ClientMain(argc, argv);
}
