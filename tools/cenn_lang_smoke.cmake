# End-to-end smoke test for the scenario DSL front-end: the same
# physics expressed as a registered C++ model and as a zoo DSL file
# must finish on identical state checksums through BOTH production
# drivers — cenn_batch (model_file= manifest key) and cenn_serve
# (model_file= submit key) — and a text-only scenario with no C++
# twin must run to completion alongside them.
#
# Invoked by ctest as:
#   cmake -DCENN_BATCH=<exe> -DCENN_SERVE=<exe> -DCENN_CLIENT=<exe>
#         -DZOO_DIR=<repo>/zoo -DWORK_DIR=<dir> -P cenn_lang_smoke.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# ---------------------------------------------------------------------------
# Phase 1: cenn_batch — twin jobs plus a text-only scenario.
# ---------------------------------------------------------------------------

file(WRITE "${WORK_DIR}/manifest.txt"
"# lang smoke: hand-coded twin vs DSL text, same seed and budget
model=gray_scott
name=twin
rows=16
cols=16
steps=40
seed=11

model_file=${ZOO_DIR}/gray_scott.cenn
name=text
rows=16
cols=16
steps=40
seed=11

# no C++ model exists for this one — the file is the model
model_file=${ZOO_DIR}/maxcut_grid.cenn
name=maxcut
steps=30
seed=2
")

execute_process(
    COMMAND "${CENN_BATCH}" --manifest=${WORK_DIR}/manifest.txt
            --out=${WORK_DIR}/out --threads=2
            --csv=${WORK_DIR}/results.csv
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out_batch
    ERROR_VARIABLE err_batch)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "batch run failed (${rc}):\n${out_batch}\n${err_batch}")
endif()

# Extracts "checksum=<u64>" from a done marker into ${var}.
function(read_checksum done_file var)
  if(NOT EXISTS "${done_file}")
    message(FATAL_ERROR "missing done marker ${done_file}")
  endif()
  file(READ "${done_file}" done)
  if(NOT done MATCHES "checksum=([0-9]+)")
    message(FATAL_ERROR "${done_file} has no checksum:\n${done}")
  endif()
  set(${var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

read_checksum("${WORK_DIR}/out/twin.done" twin_sum)
read_checksum("${WORK_DIR}/out/text.done" text_sum)
read_checksum("${WORK_DIR}/out/maxcut.done" maxcut_sum)
if(NOT twin_sum STREQUAL text_sum)
  message(FATAL_ERROR "DSL text diverged from the C++ twin over "
                      "cenn_batch: ${text_sum} vs ${twin_sum}")
endif()
if(twin_sum STREQUAL "0")
  message(FATAL_ERROR "twin checksum is zero — the jobs did not run")
endif()
message(STATUS "cenn_batch: DSL twin checksum ${text_sum} matches C++; "
               "maxcut scenario finished (${maxcut_sum})")

# ---------------------------------------------------------------------------
# Phase 2: cenn_serve — the same twin pair over the wire.
# ---------------------------------------------------------------------------

function(wait_for_port port_file log_file)
  set(port "")
  foreach(i RANGE 150)
    if(EXISTS "${port_file}")
      file(READ "${port_file}" port)
      string(STRIP "${port}" port)
      if(port)
        break()
      endif()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(NOT port)
    set(log "")
    if(EXISTS "${log_file}")
      file(READ "${log_file}" log)
    endif()
    message(FATAL_ERROR "server never wrote ${port_file}:\n${log}")
  endif()
  set(port "${port}" PARENT_SCOPE)
endfunction()

function(wait_for_exit pid_file log_file)
  file(READ "${pid_file}" pid)
  string(STRIP "${pid}" pid)
  execute_process(
      COMMAND bash -c "for i in $(seq 1 300); do \
                         kill -0 ${pid} 2>/dev/null || exit 0; sleep 0.1; \
                       done; kill -9 ${pid}; exit 1"
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    file(READ "${log_file}" log)
    message(FATAL_ERROR "server ${pid} never exited; killed:\n${log}")
  endif()
endfunction()

# Submits with --wait, asserts status "ok" and returns the checksum.
function(submit_and_checksum var)
  execute_process(
      COMMAND "${CENN_CLIENT}" --port=${port} --op=submit --tenant=smoke
              --wait ${ARGN}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "submit ${ARGN} failed (${rc}):\n${out}\n${err}")
  endif()
  if(NOT out MATCHES "\"status\":\"ok\"")
    message(FATAL_ERROR "job did not finish ok:\n${out}")
  endif()
  if(NOT out MATCHES "\"checksum\":\"([0-9]+)\"")
    message(FATAL_ERROR "result carries no checksum:\n${out}")
  endif()
  set(${var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

execute_process(
    COMMAND bash -c "\"${CENN_SERVE}\" --work-dir=${WORK_DIR}/serve \
        --port=0 --port-file=${WORK_DIR}/port --threads=2 \
        > ${WORK_DIR}/server.log 2>&1 & echo $! > ${WORK_DIR}/server.pid"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cannot launch cenn_serve (${rc})")
endif()
wait_for_port("${WORK_DIR}/port" "${WORK_DIR}/server.log")
message(STATUS "server listening on port ${port}")

submit_and_checksum(serve_twin_sum
    --spec=model=heat\ rows=12\ cols=12\ steps=30\ seed=7)
submit_and_checksum(serve_text_sum
    --spec=model_file=${ZOO_DIR}/heat.cenn\ rows=12\ cols=12\ steps=30\ seed=7)
if(NOT serve_twin_sum STREQUAL serve_text_sum)
  message(FATAL_ERROR "DSL text diverged from the C++ twin over "
                      "cenn_serve: ${serve_text_sum} vs ${serve_twin_sum}")
endif()

# Inline model_source over the wire: the client's quoted-value spec
# grammar carries a whole one-line scenario in one key.
submit_and_checksum(serve_inline_sum
    "--spec=model_source='scenario heat_text\; dt 0.1\; param kappa = 1.0\; var phi\; d phi/dt = kappa * laplacian(phi)\; init phi = gaussian_spots(spots=3)' rows=12 cols=12 steps=30 seed=7")
if(NOT serve_inline_sum STREQUAL serve_twin_sum)
  message(FATAL_ERROR "inline model_source diverged from the C++ twin over "
                      "cenn_serve: ${serve_inline_sum} vs ${serve_twin_sum}")
endif()

execute_process(
    COMMAND "${CENN_CLIENT}" --port=${port} --op=shutdown
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out_shut
    ERROR_VARIABLE err_shut)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "shutdown failed (${rc}):\n${out_shut}\n${err_shut}")
endif()
wait_for_exit("${WORK_DIR}/server.pid" "${WORK_DIR}/server.log")

message(STATUS "SMOKE_PASS: DSL scenarios are checksum-identical to their "
               "C++ twins over cenn_batch and cenn_serve")
