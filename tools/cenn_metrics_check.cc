/**
 * @file
 * cenn_metrics_check — validates a cenn.metrics.v1 JSONL stream.
 *
 * Used by the metrics smoke tests (and handy interactively) to assert
 * the contract documented in obs/metrics_emitter.h:
 *
 *  - every line parses as a JSON object with the v1 schema tag and
 *    the seq / ts_ms / uptime_ms / reason / counters / gauges /
 *    deltas fields;
 *  - seq counts 0,1,2,... with reason "start" first and "exit" last;
 *  - every counter is monotone non-decreasing from line to line, and
 *    each delta equals the counter increase since the previous line;
 *  - with --min-samples=N, at least N lines are present;
 *  - with --require=a,b,..., the final line carries at least one
 *    counter or gauge whose name contains each listed fragment
 *    (substring match, so session-scoped prefixes like
 *    runtime.session7. don't matter);
 *  - with --expect=name>=VALUE (repeatable; also <= and ==), some
 *    counter or gauge in the exit snapshot whose name contains `name`
 *    satisfies the comparison — e.g. --expect=serve.jobs_completed>=100
 *    asserts the serve subtree actually finished that many jobs.
 *
 * Exit code 0 on success, 1 with a diagnostic on the first violation.
 *
 * Usage:
 *   cenn_metrics_check FILE [--min-samples=N] [--require=p1,p2,...]
 *                      [--expect=name>=VALUE ...]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

/**
 * Parser for exactly the metrics-line shape: a flat object of string
 * or number scalars plus flat string->number sub-objects. Strict
 * enough that malformed JSON of any kind fails.
 */
class MetricsLine
{
  public:
    bool Parse(const std::string& text)
    {
        text_ = &text;
        pos_ = 0;
        strings_.clear();
        numbers_.clear();
        objects_.clear();
        if (!ParseObjectInto(nullptr)) {
          return false;
        }
        SkipWs();
        return pos_ == text.size();
    }

    /** Top-level string field, or "" when absent. */
    std::string GetString(const std::string& key) const
    {
        const auto it = strings_.find(key);
        return it == strings_.end() ? "" : it->second;
    }

    /** Top-level number field; NaN when absent. */
    double GetNumber(const std::string& key) const
    {
        const auto it = numbers_.find(key);
        return it == numbers_.end() ? std::nan("") : it->second;
    }

    bool HasObject(const std::string& key) const
    {
        return objects_.count(key) != 0;
    }

    /** Flat name->value sub-object (empty when absent). */
    const std::map<std::string, double>& Object(const std::string& key) const
    {
        static const std::map<std::string, double> kEmpty;
        const auto it = objects_.find(key);
        return it == objects_.end() ? kEmpty : it->second;
    }

  private:
    void SkipWs()
    {
        while (pos_ < text_->size() &&
               ((*text_)[pos_] == ' ' || (*text_)[pos_] == '\t')) {
          ++pos_;
        }
    }

    char Peek() const { return pos_ < text_->size() ? (*text_)[pos_] : '\0'; }

    bool ParseString(std::string* out)
    {
        if (Peek() != '"') {
          return false;
        }
        ++pos_;
        out->clear();
        while (pos_ < text_->size()) {
          const char ch = (*text_)[pos_];
          if (ch == '"') {
            ++pos_;
            return true;
          }
          if (ch == '\\') {
            if (pos_ + 1 >= text_->size()) {
              return false;
            }
            const char esc = (*text_)[pos_ + 1];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out->push_back(esc);
                pos_ += 2;
                break;
              case 'b':
              case 'f':
              case 'n':
              case 'r':
              case 't':
                out->push_back(' ');
                pos_ += 2;
                break;
              case 'u':
                if (pos_ + 5 >= text_->size()) {
                  return false;
                }
                out->push_back('?');
                pos_ += 6;
                break;
              default:
                return false;
            }
            continue;
          }
          out->push_back(ch);
          ++pos_;
        }
        return false;  // unterminated
    }

    bool ParseNumber(double* out)
    {
        const char* start = text_->c_str() + pos_;
        char* end = nullptr;
        *out = std::strtod(start, &end);
        if (end == start) {
          return false;
        }
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    /**
     * Parses an object. With `into` null this is the top level (the
     * three sub-objects and scalars are captured into the member
     * maps); non-null parses a flat string->number object.
     */
    bool ParseObjectInto(std::map<std::string, double>* into)
    {
        SkipWs();
        if (Peek() != '{') {
          return false;
        }
        ++pos_;
        SkipWs();
        if (Peek() == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          SkipWs();
          std::string key;
          if (!ParseString(&key)) {
            return false;
          }
          SkipWs();
          if (Peek() != ':') {
            return false;
          }
          ++pos_;
          SkipWs();
          const char ch = Peek();
          if (into != nullptr) {
            // Sub-objects are strictly flat name->number (null = a
            // non-finite derived stat; recorded as NaN).
            if (ch == 'n' &&
                text_->compare(pos_, 4, "null") == 0) {
              pos_ += 4;
              (*into)[key] = std::nan("");
            } else {
              double v = 0.0;
              if (!ParseNumber(&v)) {
                return false;
              }
              (*into)[key] = v;
            }
          } else if (ch == '{') {
            if (!ParseObjectInto(&objects_[key])) {
              return false;
            }
          } else if (ch == '"') {
            std::string v;
            if (!ParseString(&v)) {
              return false;
            }
            strings_[key] = v;
          } else {
            double v = 0.0;
            if (!ParseNumber(&v)) {
              return false;
            }
            numbers_[key] = v;
          }
          SkipWs();
          if (Peek() == ',') {
            ++pos_;
            continue;
          }
          if (Peek() == '}') {
            ++pos_;
            return true;
          }
          return false;
        }
    }

    const std::string* text_ = nullptr;
    std::size_t pos_ = 0;
    std::map<std::string, std::string> strings_;
    std::map<std::string, double> numbers_;
    std::map<std::string, std::map<std::string, double>> objects_;
};

/** One --expect=name>=VALUE assertion on the exit snapshot. */
struct Expectation {
  std::string name;
  std::string op;  // ">=", "<=" or "=="
  double value = 0.0;
};

/** Parses "name>=VALUE" (or <=, ==); false on malformed text. */
bool
ParseExpectation(const std::string& text, Expectation* out)
{
  for (const char* op : {">=", "<=", "=="}) {
    const std::size_t pos = text.find(op);
    if (pos == std::string::npos || pos == 0) {
      continue;
    }
    out->name = text.substr(0, pos);
    out->op = op;
    const std::string rhs = text.substr(pos + 2);
    char* end = nullptr;
    out->value = std::strtod(rhs.c_str(), &end);
    return end != rhs.c_str() && *end == '\0';
  }
  return false;
}

bool
Satisfies(const Expectation& e, double actual)
{
  if (e.op == ">=") {
    return actual >= e.value - 1e-9;
  }
  if (e.op == "<=") {
    return actual <= e.value + 1e-9;
  }
  return std::fabs(actual - e.value) <= 1e-9;
}

int
Fail(const char* path, std::size_t line_no, const std::string& what)
{
  std::fprintf(stderr, "cenn_metrics_check: %s:%zu: %s\n", path, line_no,
               what.c_str());
  return 1;
}

}  // namespace

int
main(int argc, char** argv)
{
  const char* path = nullptr;
  long min_samples = 2;  // a valid stream has at least start + exit
  std::vector<std::string> required;
  std::vector<Expectation> expectations;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--min-samples=", 14) == 0) {
      min_samples = std::strtol(arg + 14, nullptr, 10);
    } else if (std::strncmp(arg, "--expect=", 9) == 0) {
      Expectation e;
      if (!ParseExpectation(arg + 9, &e)) {
        std::fprintf(stderr,
                     "cenn_metrics_check: bad --expect '%s' (want "
                     "name>=VALUE, name<=VALUE or name==VALUE)\n",
                     arg + 9);
        return 2;
      }
      expectations.push_back(e);
    } else if (std::strncmp(arg, "--require=", 10) == 0) {
      std::string list(arg + 10);
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string item =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!item.empty()) {
          required.push_back(item);
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    } else if (path == nullptr) {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: cenn_metrics_check FILE [--min-samples=N] "
                   "[--require=p1,p2,...] [--expect=name>=VALUE ...]\n");
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: cenn_metrics_check FILE [--min-samples=N] "
                 "[--require=p1,p2,...] [--expect=name>=VALUE ...]\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cenn_metrics_check: cannot open '%s'\n", path);
    return 1;
  }

  std::map<std::string, double> prev_counters;
  MetricsLine parsed;
  std::string line;
  std::string last_reason;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      return Fail(path, line_no, "empty line");
    }
    if (!parsed.Parse(line)) {
      return Fail(path, line_no, "line is not a valid metrics object");
    }
    if (parsed.GetString("schema") != "cenn.metrics.v1") {
      return Fail(path, line_no, "bad or missing schema tag");
    }
    const double seq = parsed.GetNumber("seq");
    if (std::isnan(seq) ||
        seq != static_cast<double>(line_no - 1)) {
      return Fail(path, line_no, "seq is not the line index");
    }
    if (std::isnan(parsed.GetNumber("ts_ms")) ||
        std::isnan(parsed.GetNumber("uptime_ms"))) {
      return Fail(path, line_no, "missing ts_ms / uptime_ms");
    }
    const std::string reason = parsed.GetString("reason");
    if (reason.empty()) {
      return Fail(path, line_no, "missing reason");
    }
    if (line_no == 1 && reason != "start") {
      return Fail(path, line_no, "first sample reason is not \"start\"");
    }
    if (!parsed.HasObject("counters") || !parsed.HasObject("gauges") ||
        !parsed.HasObject("deltas")) {
      return Fail(path, line_no, "missing counters/gauges/deltas");
    }
    const auto& counters = parsed.Object("counters");
    const auto& deltas = parsed.Object("deltas");
    for (const auto& [name, value] : counters) {
      const auto it = prev_counters.find(name);
      const double prev = it == prev_counters.end() ? 0.0 : it->second;
      if (value + 1e-9 < prev) {
        return Fail(path, line_no, "counter '" + name + "' decreased (" +
                                       std::to_string(prev) + " -> " +
                                       std::to_string(value) + ")");
      }
      const auto d = deltas.find(name);
      if (d == deltas.end()) {
        return Fail(path, line_no, "counter '" + name + "' has no delta");
      }
      if (std::fabs(d->second - (value - prev)) > 1e-6) {
        return Fail(path, line_no,
                    "delta of '" + name + "' does not match the increase");
      }
    }
    prev_counters = counters;
    last_reason = reason;
  }

  if (line_no == 0) {
    return Fail(path, 0, "no samples");
  }
  if (last_reason != "exit") {
    return Fail(path, line_no, "last sample reason is '" + last_reason +
                                   "', expected 'exit'");
  }
  if (line_no < static_cast<std::size_t>(min_samples)) {
    return Fail(path, line_no,
                "only " + std::to_string(line_no) + " samples, expected >= " +
                    std::to_string(min_samples));
  }
  // Required fragments are checked against the final (exit) snapshot.
  for (const std::string& fragment : required) {
    bool found = false;
    for (const auto& [name, value] : prev_counters) {
      if (name.find(fragment) != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found) {
      for (const auto& [name, value] : parsed.Object("gauges")) {
        if (name.find(fragment) != std::string::npos) {
          found = true;
          break;
        }
      }
    }
    if (!found) {
      return Fail(path, line_no,
                  "no counter/gauge matching '" + fragment + "' in the exit "
                  "snapshot");
    }
  }

  // Value expectations run against the exit snapshot too: an entry
  // whose name contains the expectation's name must satisfy it.
  for (const Expectation& e : expectations) {
    bool matched = false;
    bool satisfied = false;
    std::string actuals;
    const std::map<std::string, double>* snapshots[] = {
        &prev_counters, &parsed.Object("gauges")};
    for (const auto* snapshot : snapshots) {
      for (const auto& [name, value] : *snapshot) {
        if (name.find(e.name) == std::string::npos) {
          continue;
        }
        matched = true;
        if (Satisfies(e, value)) {
          satisfied = true;
        } else {
          actuals += (actuals.empty() ? "" : ", ") + name + "=" +
                     std::to_string(value);
        }
      }
    }
    if (!matched) {
      return Fail(path, line_no, "no counter/gauge matching '" + e.name +
                                     "' in the exit snapshot");
    }
    if (!satisfied) {
      return Fail(path, line_no, "expectation '" + e.name + e.op +
                                     std::to_string(e.value) +
                                     "' not met (" + actuals + ")");
    }
  }

  std::printf("cenn_metrics_check: %s ok (%zu samples)\n", path, line_no);
  return 0;
}
