# Live-metrics smoke test: cenn_run with --metrics-out must stream a
# valid cenn.metrics.v1 JSONL file — several interval samples plus the
# start/exit bookends, monotone counters with matching deltas, and the
# instrumentation families this PR promises (runtime.shard*,
# kernels.traffic.*, lut.interp.*) present in the exit snapshot.
# Validation is cenn_metrics_check, the same checker the batch fault
# smoke reuses on per-job streams.
#
# Invoked by ctest as:
#   cmake -DCENN_RUN=<exe> -DCENN_METRICS_CHECK=<exe> -DWORK_DIR=<dir>
#         -P cenn_metrics_smoke.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
    COMMAND "${CENN_RUN}" --model=reaction_diffusion --rows=128 --cols=128
            --steps=400 --engine=soa
            --metrics-out=${WORK_DIR}/run.metrics.jsonl
            --metrics-interval-ms=10
            --stats-out=${WORK_DIR}/run.stats.txt
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out_run
    ERROR_VARIABLE err_run)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cenn_run failed (${rc}):\n${out_run}\n${err_run}")
endif()

# start + exit + at least three interval samples; the run takes a few
# hundred ms at this size so a 10 ms period leaves ample margin.
execute_process(
    COMMAND "${CENN_METRICS_CHECK}" ${WORK_DIR}/run.metrics.jsonl
            --min-samples=5
            --require=runtime.shard,kernels.traffic.,lut.interp.
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out_chk
    ERROR_VARIABLE err_chk)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "metrics check failed (${rc}):\n${out_chk}\n${err_chk}")
endif()

# The live stream and the end-of-run stats dump come from the same
# registry: every family in the exit snapshot must be in the dump too.
file(READ "${WORK_DIR}/run.stats.txt" stats_txt)
foreach(stat runtime.shard0.step_ns kernels.traffic.bytes_read
        lut.interp.accesses)
  if(NOT stats_txt MATCHES "${stat}")
    message(FATAL_ERROR "stat '${stat}' missing from run.stats.txt:\n"
            "${stats_txt}")
  endif()
endforeach()

message(STATUS "SMOKE_PASS: ${out_chk}")
