/**
 * @file
 * cenn_run — the production command-line driver for the CeNN DE solver.
 *
 * Runs any bundled benchmark model with a chosen engine and prints a
 * full report: solution snapshot, accuracy against the reference
 * integrator, cycle/stall statistics, power, and optional artifacts
 * (PGM snapshot, stats dump, timeline trace, checkpoint).
 *
 * Engines (--engine):
 *   double   functional engine, IEEE double (reference arithmetic)
 *   fixed    functional engine, Q16.16 + LUT datapath
 *   arch     cycle-level accelerator simulation (fixed datapath + timing)
 *
 * Observability:
 *   --stats-out=FILE    named-stat dump (sim.*, lut.*, dram.*, …);
 *                       .csv / .json extensions switch the format
 *   --trace-out=FILE    Chrome trace_event JSON (Perfetto-loadable)
 *   --trace-categories  comma list: step,conv,lut,dram,checkpoint,
 *                       solver,counter (default all)
 *   --progress          heartbeat to stderr: steps/s and ETA
 *   --self-profile      wall-clock self-profile table at exit
 *
 * Examples:
 *   cenn_run --model=reaction_diffusion --steps=500 --engine=arch
 *   cenn_run --model=heat --engine=arch --trace-out=trace.json
 *   cenn_run --model=poisson --steady --tolerance=1e-6
 *   cenn_run --model=gray_scott --steps=3000 --pgm=pattern.pgm
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "arch/simulator.h"
#include "core/solver.h"
#include "lut/lut_evaluator.h"
#include "mapping/mapper.h"
#include "models/benchmark_model.h"
#include "obs/profile.h"
#include "obs/stat_registry.h"
#include "obs/trace.h"
#include "power/power_model.h"
#include "program/checkpoint.h"
#include "util/cli.h"
#include "util/io.h"
#include "util/stats.h"

namespace cenn {
namespace {

void
PrintUsage()
{
  std::printf("usage: cenn_run --model=<name> [options]\n\nmodels:");
  for (const auto& name : AllModelNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf(
      "\n\noptions:\n"
      "  --engine=double|fixed|arch   execution engine (default fixed)\n"
      "  --rows/--cols=N              grid size (default 64)\n"
      "  --steps=N                    steps (default: model default)\n"
      "  --seed=N                     RNG seed for initial conditions\n"
      "  --memory=ddr3|hmc-int|hmc-ext  arch engine memory system\n"
      "  --heun                       Heun integrator (double/fixed only)\n"
      "  --steady                     run until steady state\n"
      "  --tolerance=X                steady-state tolerance (1e-6)\n"
      "  --compare                    compare against the reference run\n"
      "  --pgm=FILE                   write layer-0 snapshot as PGM\n"
      "  --stats-out=FILE             write named-stat dump (text; .csv\n"
      "                               and .json extensions switch format)\n"
      "  --stats=FILE                 deprecated alias for --stats-out\n"
      "  --trace-out=FILE             write Chrome trace_event JSON\n"
      "  --trace-categories=LIST      step,conv,lut,dram,checkpoint,\n"
      "                               solver,counter or all/none\n"
      "  --trace-capacity=N           trace ring size in events (2^20)\n"
      "  --progress                   periodic steps/s + ETA heartbeat\n"
      "  --self-profile               print wall-clock self-profile\n"
      "  --checkpoint=FILE            write a checkpoint at the end\n"
      "  --ascii                      print an ASCII heatmap of layer 0\n");
}

/**
 * Periodic progress heartbeat on stderr: at most one line per
 * interval, reporting completed steps, throughput and the remaining
 * time extrapolated from the average rate so far.
 */
class ProgressMeter
{
  public:
    ProgressMeter(bool enabled, std::uint64_t total_steps)
        : enabled_(enabled),
          total_steps_(total_steps),
          start_(Clock::now()),
          last_print_(start_)
    {
    }

    void Tick(std::uint64_t steps_done)
    {
        if (!enabled_) {
          return;
        }
        const auto now = Clock::now();
        if (now - last_print_ < std::chrono::seconds(2)) {
          return;
        }
        last_print_ = now;
        const double elapsed =
            std::chrono::duration<double>(now - start_).count();
        if (elapsed <= 0.0 || steps_done == 0) {
          return;
        }
        const double rate = static_cast<double>(steps_done) / elapsed;
        const double eta =
            static_cast<double>(total_steps_ - steps_done) / rate;
        std::fprintf(stderr,
                     "progress: step %llu/%llu (%.1f%%), %.1f steps/s, "
                     "ETA %.0f s\n",
                     static_cast<unsigned long long>(steps_done),
                     static_cast<unsigned long long>(total_steps_),
                     100.0 * static_cast<double>(steps_done) /
                         static_cast<double>(total_steps_),
                     rate, eta);
    }

    void Finish(std::uint64_t steps_done) const
    {
        if (!enabled_) {
          return;
        }
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start_).count();
        std::fprintf(stderr, "progress: done, %llu steps in %.2f s "
                     "(%.1f steps/s)\n",
                     static_cast<unsigned long long>(steps_done), elapsed,
                     elapsed > 0.0
                         ? static_cast<double>(steps_done) / elapsed
                         : 0.0);
    }

  private:
    using Clock = std::chrono::steady_clock;
    bool enabled_;
    std::uint64_t total_steps_;
    Clock::time_point start_;
    Clock::time_point last_print_;
};

/** Writes a registry dump in the format implied by the extension. */
void
WriteStatsFile(const StatRegistry& reg, const std::string& path)
{
  std::ofstream out(path);
  if (!out) {
    CENN_WARN("cannot open stats output file '", path, "'");
    return;
  }
  if (path.size() > 4 && path.rfind(".csv") == path.size() - 4) {
    out << reg.DumpCsv();
  } else if (path.size() > 5 && path.rfind(".json") == path.size() - 5) {
    out << reg.DumpJson();
  } else {
    out << reg.DumpText(/*with_desc=*/true);
  }
  std::printf("wrote %zu stats to %s\n", reg.Size(), path.c_str());
}

int
RunMain(int argc, char** argv)
{
  CliFlags flags(argc, argv);
  const std::string model_name = flags.GetString("model", "");
  const bool help = flags.GetBool("help", false);
  if (help || model_name.empty()) {
    PrintUsage();
    return model_name.empty() && !help ? 1 : 0;
  }

  ModelConfig mc;
  mc.rows = static_cast<std::size_t>(flags.GetInt("rows", 64));
  mc.cols = static_cast<std::size_t>(flags.GetInt("cols", 64));
  mc.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const auto model = MakeModel(model_name, mc);
  const int steps =
      static_cast<int>(flags.GetInt("steps", model->DefaultSteps()));

  const std::string engine = flags.GetString("engine", "fixed");
  const std::string memory = flags.GetString("memory", "ddr3");
  const bool heun = flags.GetBool("heun", false);
  const bool steady = flags.GetBool("steady", false);
  const double tolerance = flags.GetDouble("tolerance", 1e-6);
  const bool compare = flags.GetBool("compare", false);
  const std::string pgm = flags.GetString("pgm", "");
  std::string stats_out = flags.GetString("stats-out", "");
  const std::string stats_legacy = flags.GetString("stats", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string trace_categories =
      flags.GetString("trace-categories", "all");
  const auto trace_capacity =
      static_cast<std::size_t>(flags.GetInt("trace-capacity", 1 << 20));
  const bool progress = flags.GetBool("progress", false);
  const bool self_profile = flags.GetBool("self-profile", false);
  const std::string checkpoint = flags.GetString("checkpoint", "");
  const bool ascii = flags.GetBool("ascii", false);
  flags.Validate();

  if (stats_out.empty() && !stats_legacy.empty()) {
    CENN_WARN("--stats is deprecated; use --stats-out");
    stats_out = stats_legacy;
  }
  if (self_profile) {
    Profiler::Instance().Enable(true);
  }

  std::unique_ptr<TraceSession> trace;
  if (!trace_out.empty()) {
    trace = std::make_unique<TraceSession>(
        ParseTraceCategories(trace_categories), trace_capacity);
  }

  MapperReport map_report;
  SolverProgram program;
  program.spec = Mapper::MapWithReport(model->System(), &map_report);
  program.lut_config = model->Luts();
  if (heun) {
    if (engine == "arch") {
      CENN_FATAL("--heun applies to the functional engines only "
                 "(the hardware integrates with explicit Euler)");
    }
    program.spec.integrator = Integrator::kHeun;
  }

  std::printf("model %s: %zux%zu, %d layers (%s), %d templates with "
              "real-time update\n",
              model_name.c_str(), mc.rows, mc.cols, map_report.num_layers,
              IntegratorName(program.spec.integrator),
              map_report.templates_needing_update);

  std::vector<double> layer0;
  std::uint64_t steps_taken = 0;

  if (engine == "arch") {
    ArchConfig arch;
    if (memory == "hmc-int") {
      arch.memory = MemoryParams::HmcInt();
    } else if (memory == "hmc-ext") {
      arch.memory = MemoryParams::HmcExt();
    } else if (memory != "ddr3") {
      CENN_FATAL("unknown --memory '", memory, "'");
    }
    arch.pe_clock_hz = arch.memory.pe_clock_hint_hz;
    arch = RecommendedArchConfig(program, arch);
    ArchSimulator sim(program, arch);
    if (trace) {
      sim.AttachTrace(trace.get());
    }
    ProgressMeter meter(progress, static_cast<std::uint64_t>(steps));
    for (int i = 0; i < steps; ++i) {
      sim.Step();
      meter.Tick(static_cast<std::uint64_t>(i) + 1);
    }
    meter.Finish(static_cast<std::uint64_t>(steps));
    steps_taken = sim.Report().steps;
    layer0 = sim.StateDoubles(0);

    std::printf("\n%s\n%s\n", arch.Summary().c_str(),
                sim.Report().ToString(arch.pe_clock_hz).c_str());
    const EnergyReport energy = ComputeEnergy(sim.Report(), arch);
    std::printf("power %.3f W (on-chip %.3f + memory %.3f), energy "
                "%.3f mJ, %.2f GOPS/W\n",
                energy.total_power_w, energy.onchip_power_w,
                energy.memory_power_w, energy.energy_j * 1e3,
                energy.gops_per_watt);
    if (!stats_out.empty()) {
      StatRegistry reg;
      sim.RegisterStats(&reg);
      WriteStatsFile(reg, stats_out);
    }
    if (!checkpoint.empty()) {
      if (trace) {
        trace->Instant(TraceCategory::kCheckpoint, "checkpoint.write",
                       sim.Report().total_cycles);
      }
      Checkpoint cp = CaptureCheckpoint(sim.Engine());
      const auto bytes = SerializeCheckpoint(cp);
      std::ofstream out(checkpoint, std::ios::binary);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      std::printf("wrote checkpoint to %s (%zu bytes)\n",
                  checkpoint.c_str(), bytes.size());
    }
    if (trace) {
      // PE-cycle timestamps: scale to microseconds of modeled time.
      if (trace->WriteChromeJson(trace_out, arch.pe_clock_hz / 1e6)) {
        std::printf("wrote trace to %s (%zu events, %llu dropped)\n",
                    trace_out.c_str(), trace->Size(),
                    static_cast<unsigned long long>(trace->Dropped()));
      }
    }
  } else {
    SolverOptions options;
    if (engine == "double") {
      options.precision = Precision::kDouble;
    } else if (engine == "fixed") {
      options.precision = Precision::kFixed32;
      auto bank = std::make_shared<const LutBank>(program.spec,
                                                  program.lut_config);
      options.fixed_evaluator = std::make_shared<LutEvaluatorFixed>(bank);
    } else {
      CENN_FATAL("unknown --engine '", engine, "'");
    }
    DeSolver solver(program.spec, options);
    if (steady) {
      const auto result = solver.RunUntilSteady(
          tolerance, static_cast<std::uint64_t>(steps));
      std::printf("\nsteady-state search: %s after %llu steps "
                  "(delta %.3e, tolerance %.1e)\n",
                  result.converged ? "converged" : "NOT converged",
                  static_cast<unsigned long long>(result.steps_taken),
                  result.final_delta, tolerance);
    } else {
      // Step one-by-one: the heartbeat and per-step solver trace
      // events both need the loop; Run() is a plain loop anyway.
      ProgressMeter meter(progress, static_cast<std::uint64_t>(steps));
      const auto run_start = std::chrono::steady_clock::now();
      for (int i = 0; i < steps; ++i) {
        solver.Step();
        if (trace) {
          const auto ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - run_start)
                  .count();
          trace->Instant(TraceCategory::kSolver, "solver.step",
                         static_cast<std::uint64_t>(ns));
        }
        meter.Tick(static_cast<std::uint64_t>(i) + 1);
      }
      meter.Finish(static_cast<std::uint64_t>(steps));
    }
    steps_taken = solver.Steps();
    layer0 = solver.StateDoubles(0);
    std::printf("\nengine %s: %llu steps, t = %.4f\n",
                PrecisionName(solver.GetPrecision()),
                static_cast<unsigned long long>(steps_taken),
                solver.Time());
    if (!checkpoint.empty()) {
      const auto bytes =
          SerializeCheckpoint(CaptureCheckpoint(solver));
      std::ofstream out(checkpoint, std::ios::binary);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      std::printf("wrote checkpoint to %s (%zu bytes)\n",
                  checkpoint.c_str(), bytes.size());
    }
    if (!stats_out.empty()) {
      StatRegistry reg;
      reg.BindDerived("sim.steps", "solver steps executed", [&solver] {
        return static_cast<double>(solver.Steps());
      });
      reg.BindDerived("sim.time", "simulated time (steps * dt)",
                      [&solver] { return solver.Time(); });
      WriteStatsFile(reg, stats_out);
      std::printf("note: lut.*/dram.* stats require --engine=arch\n");
    }
    if (trace) {
      // Nanosecond host timestamps: 1000 ticks per microsecond.
      if (trace->WriteChromeJson(trace_out, 1e3)) {
        std::printf("wrote trace to %s (%zu events, %llu dropped)\n",
                    trace_out.c_str(), trace->Size(),
                    static_cast<unsigned long long>(trace->Dropped()));
      }
    }
  }

  if (compare) {
    const auto reference =
        model->ReferenceRun(static_cast<int>(steps_taken));
    const ErrorSummary err = CompareFields(layer0, reference[0]);
    std::printf("accuracy vs reference integrator (layer 0): %s\n",
                FormatError(err).c_str());
  }
  if (!pgm.empty() &&
      WritePgm(pgm, layer0, mc.rows, mc.cols)) {
    std::printf("wrote %s\n", pgm.c_str());
  }
  if (ascii) {
    std::printf("\n%s", AsciiHeatmap(layer0, mc.rows, mc.cols, 48).c_str());
  }
  if (self_profile) {
    std::printf("\n%s", Profiler::Instance().Report().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace cenn

int
main(int argc, char** argv)
{
  return cenn::RunMain(argc, argv);
}
