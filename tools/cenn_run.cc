/**
 * @file
 * cenn_run — the production command-line driver for the CeNN DE solver.
 *
 * Runs any bundled benchmark model with a chosen engine and prints a
 * full report: solution snapshot, accuracy against the reference
 * integrator, cycle/stall statistics, power, and optional artifacts
 * (PGM snapshot, stats dump, timeline trace, checkpoint).
 *
 * Execution is selected by the unified policy (--exec, built through
 * util/exec_policy.h + runtime/engine_factory.h):
 *   functional  cell-by-cell reference engine (double/fixed precision)
 *   soa         vectorized SoA kernels (double/fixed/float precision)
 *   arch        cycle-level accelerator simulation (fixed + timing)
 * The legacy flags --engine/--precision/--memory/--kernel-path (and
 * --engine=double|fixed) still parse as deprecated aliases, as does
 * --threads for the band-shard count.
 *
 * The driver itself is engine-agnostic: it steps a cenn::Engine
 * through a persistent worker team and only probes for the arch
 * simulator to print timing/power extras. Sharded stepping is
 * bit-identical to serial on engines that support it.
 *
 * Examples:
 *   cenn_run --model=reaction_diffusion --steps=500 --exec=arch
 *   cenn_run --model=heat --exec=soa:fixed:shards=4
 *   cenn_run --model=fitzhugh_nagumo --exec=soa:double:simd:shards=8:pin=numa
 *   cenn_run --model=poisson --steady --tolerance=1e-6
 *   cenn_run --model=gray_scott --steps=3000 --pgm=pattern.pgm
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "arch/simulator.h"
#include "core/solver.h"
#include "health/health_guard.h"
#include "kernels/kernel_path.h"
#include "kernels/soa_simd.h"
#include "lang/compiler.h"
#include "lang/spec_dump.h"
#include "lut/lut_traffic.h"
#include "mapping/mapper.h"
#include "models/benchmark_model.h"
#include "obs/metrics_emitter.h"
#include "obs/profile.h"
#include "obs/stat_registry.h"
#include "obs/stats_io.h"
#include "obs/trace.h"
#include "power/power_model.h"
#include "program/checkpoint.h"
#include "runtime/engine_factory.h"
#include "runtime/sharded_stepper.h"
#include "runtime/worker_team.h"
#include "util/cli.h"
#include "util/common_options.h"
#include "util/io.h"
#include "util/stats.h"

namespace cenn {
namespace {

void
PrintUsage()
{
  std::printf("usage: cenn_run --model=<name> [options]\n"
              "       cenn_run --model-file=<scenario.cenn> [options]\n"
              "\nmodels:");
  for (const auto& name : AllModelNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf(
      "\n\nshared options:\n%s"
      "\nrun options:\n"
      "  --model-file=FILE            compile a scenario DSL file instead "
      "of a bundled model\n"
      "  --rows/--cols=N              grid size (default 64, or the "
      "scenario's own `grid`)\n"
      "  --steps=N                    steps (default: model/scenario "
      "default)\n"
      "  --seed=N                     RNG seed for initial conditions\n"
      "  --dump-spec                  print the mapped network spec and "
      "exit\n"
      "  --heun                       Heun integrator (functional only)\n"
      "  --steady                     run until steady state\n"
      "  --tolerance=X                steady-state tolerance (1e-6)\n"
      "  --compare                    compare against the reference run\n"
      "  --pgm=FILE                   write layer-0 snapshot as PGM\n"
      "  --checkpoint=FILE            write a checkpoint at the end\n"
      "  --ascii                      print an ASCII heatmap of layer 0\n",
      CommonOptionsHelp().c_str());
}

/**
 * Periodic progress heartbeat on stderr: at most one line per
 * interval, reporting completed steps, throughput and the remaining
 * time extrapolated from the average rate so far.
 */
class ProgressMeter
{
  public:
    ProgressMeter(bool enabled, std::uint64_t total_steps)
        : enabled_(enabled),
          total_steps_(total_steps),
          start_(Clock::now()),
          last_print_(start_)
    {
    }

    void Tick(std::uint64_t steps_done)
    {
        if (!enabled_) {
          return;
        }
        const auto now = Clock::now();
        if (now - last_print_ < std::chrono::seconds(2)) {
          return;
        }
        last_print_ = now;
        const double elapsed =
            std::chrono::duration<double>(now - start_).count();
        if (elapsed <= 0.0 || steps_done == 0) {
          return;
        }
        const double rate = static_cast<double>(steps_done) / elapsed;
        const double eta =
            static_cast<double>(total_steps_ - steps_done) / rate;
        std::fprintf(stderr,
                     "progress: step %llu/%llu (%.1f%%), %.1f steps/s, "
                     "ETA %.0f s\n",
                     static_cast<unsigned long long>(steps_done),
                     static_cast<unsigned long long>(total_steps_),
                     100.0 * static_cast<double>(steps_done) /
                         static_cast<double>(total_steps_),
                     rate, eta);
    }

    void Finish(std::uint64_t steps_done) const
    {
        if (!enabled_) {
          return;
        }
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start_).count();
        std::fprintf(stderr, "progress: done, %llu steps in %.2f s "
                     "(%.1f steps/s)\n",
                     static_cast<unsigned long long>(steps_done), elapsed,
                     elapsed > 0.0
                         ? static_cast<double>(steps_done) / elapsed
                         : 0.0);
    }

  private:
    using Clock = std::chrono::steady_clock;
    bool enabled_;
    std::uint64_t total_steps_;
    Clock::time_point start_;
    Clock::time_point last_print_;
};

int
RunMain(int argc, char** argv)
{
  CliFlags flags(argc, argv);
  const std::string model_name = flags.GetString("model", "");
  const std::string model_file = flags.GetString("model-file", "");
  const bool help = flags.GetBool("help", false);
  if (help || (model_name.empty() && model_file.empty())) {
    PrintUsage();
    return !help ? 1 : 0;
  }
  if (!model_name.empty() && !model_file.empty()) {
    CENN_FATAL("--model and --model-file are mutually exclusive");
  }

  // A scenario file carries its own `grid`, so unset flags mean "defer
  // to the file"; hand-coded models keep the historical 64x64 default.
  ModelConfig mc;
  mc.rows = static_cast<std::size_t>(
      flags.GetInt("rows", model_file.empty() ? 64 : 0));
  mc.cols = static_cast<std::size_t>(
      flags.GetInt("cols", model_file.empty() ? 64 : 0));
  mc.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  std::unique_ptr<BenchmarkModel> model;  // null when running a scenario
  lang::CompiledScenario scenario;
  std::string display_name = model_name;
  std::int64_t default_steps = 0;
  if (model_file.empty()) {
    model = MakeModel(model_name, mc);
    default_steps = model->DefaultSteps();
  } else {
    lang::ScenarioConfig cfg;
    cfg.rows = mc.rows;
    cfg.cols = mc.cols;
    cfg.seed = mc.seed;
    scenario = lang::CompileFileOrDie(model_file, cfg);
    display_name = scenario.name;
    default_steps = static_cast<std::int64_t>(scenario.default_steps);
    mc.rows = scenario.system.rows;
    mc.cols = scenario.system.cols;
  }
  const int steps = static_cast<int>(flags.GetInt("steps", default_steps));

  CommonOptions defaults;
  defaults.exec.precision = "fixed";
  const CommonOptions copts = ParseCommonOptions(flags, kAllCommonFlags,
                                                 defaults);
  const bool heun = flags.GetBool("heun", false);
  const bool steady = flags.GetBool("steady", false);
  const double tolerance = flags.GetDouble("tolerance", 1e-6);
  const bool compare = flags.GetBool("compare", false);
  const bool dump_spec = flags.GetBool("dump-spec", false);
  const std::string pgm = flags.GetString("pgm", "");
  const std::string checkpoint = flags.GetString("checkpoint", "");
  const bool ascii = flags.GetBool("ascii", false);
  flags.Validate();

  if (compare && model == nullptr) {
    CENN_FATAL("--compare requires --model: scenarios have no reference "
               "integrator to compare against");
  }
  if (steps <= 0 && !steady && !dump_spec) {
    CENN_FATAL("scenario '", display_name, "' declares no 'steps' "
               "statement; pass --steps=N");
  }

  if (copts.self_profile) {
    Profiler::Instance().Enable(true);
  }

  std::unique_ptr<TraceSession> trace;
  if (!copts.trace_out.empty()) {
    trace = std::make_unique<TraceSession>(
        ParseTraceCategories(copts.trace_categories), copts.trace_capacity);
  }

  ExecPolicy exec = copts.exec;
  if (copts.threads_given) {
    WarnDeprecatedOnce("--threads (cenn_run)", "--exec=...:shards=N");
    if (exec.shards == 1) {
      exec.shards = copts.threads;
    }
  }
  const EngineRequest normalized = ToEngineRequest(exec);

  MapperReport map_report;
  SolverProgram program;
  const EquationSystem& system =
      model != nullptr ? model->System() : scenario.system;
  program.spec = Mapper::MapWithReport(system, &map_report);
  program.lut_config = model != nullptr ? model->Luts() : scenario.luts;
  program.description =
      model != nullptr ? "benchmark model '" + model->Name() + "'"
                       : "scenario '" + display_name + "'";
  if (heun) {
    if (normalized.engine != "functional") {
      CENN_FATAL("--heun applies to the functional engine only (the "
                 "hardware and the SoA kernels integrate with explicit "
                 "Euler)");
    }
    program.spec.integrator = Integrator::kHeun;
  }

  if (dump_spec) {
    std::printf("%s", lang::DumpSpec(program.spec, program.lut_config,
                                     steps > 0
                                         ? static_cast<std::uint64_t>(steps)
                                         : 0)
                          .c_str());
    return 0;
  }

  std::printf("model %s: %zux%zu, %d layers (%s), %d templates with "
              "real-time update\n",
              display_name.c_str(), mc.rows, mc.cols, map_report.num_layers,
              IntegratorName(program.spec.integrator),
              map_report.templates_needing_update);
  std::printf("exec policy: %s\n", FormatExecPolicy(exec).c_str());

  const std::unique_ptr<Engine> engine = BuildEngine(program, normalized);
  auto* sim = dynamic_cast<ArchSimulator*>(engine.get());
  if (sim != nullptr && trace != nullptr) {
    sim->AttachTrace(trace.get());
  }

  HealthGuard guard([&copts] {
    HealthGuardConfig cfg;
    cfg.max_abs = copts.guard_max_abs;
    cfg.max_rms = copts.guard_max_rms;
    cfg.max_sat_events = copts.guard_max_sat;
    cfg.check_every = copts.guard_check_every;
    return cfg;
  }());
  if (copts.guard) {
    engine->AttachHealthGuard(&guard);
  }
  // Saturation events on this thread land in the guard; the worker
  // team installs its own counter on each band worker. No-op without
  // --guard.
  ScopedSatCounter sat(engine->AttachedHealthGuard());

  // Observability is bound up front into one registry, so the exit
  // stats dump and the live metrics stream read the same names with
  // the same values: engine stats (kernels.traffic.* on soa, the full
  // counter set on arch), guard health, off-chip LUT interpolation
  // traffic (lut.interp.*) and per-shard phase timings
  // (runtime.shard<K>.*, runtime.publish.*).
  StatRegistry reg;
  LutTrafficSink lut_traffic;
  engine->AttachLutTraffic(&lut_traffic);
  ShardPhaseTimings timings(exec.shards);
  engine->BindStats(&reg, "");
  if (copts.guard) {
    guard.BindStats(&reg, "");
  }
  lut_traffic.BindStats(&reg, "");
  timings.BindStats(&reg, "runtime.");
  std::unique_ptr<MetricsEmitter> metrics;
  if (!copts.metrics_out.empty()) {
    MetricsOptions mo;
    mo.path = copts.metrics_out;
    mo.interval_ms = copts.metrics_interval_ms;
    metrics = std::make_unique<MetricsEmitter>(&reg, mo);
    if (!metrics->Start()) {
      metrics.reset();
    }
  }
  // LUT interpolation on *this* thread (steady-state search, the arch
  // simulator's serial stepping) drains into the sink; the worker
  // team installs per-worker tallies of its own.
  ScopedLutTally lut_tally(engine->AttachedLutTraffic());

  if (steady) {
    // A scenario without a `steps` statement still needs a search
    // bound; 100k steps is far past convergence for every zoo model.
    const std::uint64_t bound =
        steps > 0 ? static_cast<std::uint64_t>(steps) : 100000;
    const auto result = RunUntilSteady(*engine, tolerance, bound);
    std::printf("\nsteady-state search: %s after %llu steps "
                "(delta %.3e, tolerance %.1e)\n",
                result.converged ? "converged" : "NOT converged",
                static_cast<unsigned long long>(result.steps_taken),
                result.final_delta, tolerance);
  } else {
    ProgressMeter meter(copts.progress, static_cast<std::uint64_t>(steps));
    // One persistent worker team for the whole run: band-parallel (or
    // serial, shards=1) stepping in heartbeat-sized slices reusing the
    // same warmed, optionally pinned threads; bit-exact vs plain
    // Step() loops by the band-phase determinism contract. Phase
    // timings and spans accumulate per slice; the metrics stream
    // samples on its own clock.
    TeamOptions team_options;
    team_options.shards = exec.shards;
    ParseTeamPin(exec.pin, &team_options.pin);
    team_options.block_steps = exec.block_steps;
    team_options.timings = &timings;
    // The arch simulator traces its own cycle-level spans; host-side
    // phase spans would mix clock domains on the same lanes.
    team_options.trace = sim == nullptr ? trace.get() : nullptr;
    ShardTeam team(engine.get(), team_options);
    const std::uint64_t total = static_cast<std::uint64_t>(steps);
    std::uint64_t done = 0;
    while (done < total) {
      const std::uint64_t slice = std::min<std::uint64_t>(64, total - done);
      team.Run(slice);
      done += slice;
      if (copts.guard && !guard.MaybeScan(*engine)) {
        break;
      }
      meter.Tick(done);
    }
    meter.Finish(static_cast<std::uint64_t>(steps));
  }

  const std::uint64_t steps_taken = engine->Steps();
  const std::vector<double> layer0 = engine->Snapshot(0);

  if (copts.guard) {
    if (steady) {
      guard.Scan(*engine);  // stepping ran inside RunUntilSteady
    }
    std::printf("health: %s\n", guard.Summary().c_str());
  }

  if (sim != nullptr) {
    const ArchConfig& arch = sim->Config();
    std::printf("\n%s\n%s\n", arch.Summary().c_str(),
                sim->Report().ToString(arch.pe_clock_hz).c_str());
    const EnergyReport energy = ComputeEnergy(sim->Report(), arch);
    std::printf("power %.3f W (on-chip %.3f + memory %.3f), energy "
                "%.3f mJ, %.2f GOPS/W\n",
                energy.total_power_w, energy.onchip_power_w,
                energy.memory_power_w, energy.energy_j * 1e3,
                energy.gops_per_watt);
  } else {
    std::printf("\nengine %s (%s", engine->Kind(),
                normalized.precision.c_str());
    if (normalized.engine == "soa") {
      const KernelPath resolved = ResolveKernelPath(normalized.kernel_path);
      std::printf(", %s kernels", KernelPathName(resolved));
      if (resolved == KernelPath::kSimd) {
        std::printf(" [%s]", SimdIsaName());
      }
    }
    std::printf("): %llu steps, t = %.4f\n",
                static_cast<unsigned long long>(steps_taken),
                engine->Time());
  }

  if (!checkpoint.empty()) {
    if (sim != nullptr && trace != nullptr) {
      trace->Instant(TraceCategory::kCheckpoint, "checkpoint.write",
                     sim->Report().total_cycles);
    }
    const auto bytes = SerializeCheckpoint(CaptureCheckpoint(*engine));
    std::ofstream out(checkpoint, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::printf("wrote checkpoint to %s (%zu bytes)\n", checkpoint.c_str(),
                bytes.size());
  }
  if (metrics != nullptr) {
    metrics->Stop();  // appends the final "exit" sample
    std::printf("wrote %llu metrics samples to %s\n",
                static_cast<unsigned long long>(metrics->SamplesWritten()),
                copts.metrics_out.c_str());
  }
  if (!copts.stats_out.empty()) {
    if (WriteStatsFile(reg, copts.stats_out)) {
      std::printf("wrote %zu stats to %s\n", reg.Size(),
                  copts.stats_out.c_str());
    }
  }
  if (trace != nullptr) {
    // Arch timestamps are PE cycles (scale to modeled microseconds);
    // functional timestamps are host nanoseconds (1000 per us).
    const double ticks_per_us =
        sim != nullptr ? sim->Config().pe_clock_hz / 1e6 : 1e3;
    if (trace->WriteChromeJson(copts.trace_out, ticks_per_us)) {
      std::printf("wrote trace to %s (%zu events, %llu dropped)\n",
                  copts.trace_out.c_str(), trace->Size(),
                  static_cast<unsigned long long>(trace->Dropped()));
    }
  }

  if (compare) {
    const auto reference =
        model->ReferenceRun(static_cast<int>(steps_taken));
    const ErrorSummary err = CompareFields(layer0, reference[0]);
    std::printf("accuracy vs reference integrator (layer 0): %s\n",
                FormatError(err).c_str());
  }
  if (!pgm.empty() &&
      WritePgm(pgm, layer0, mc.rows, mc.cols)) {
    std::printf("wrote %s\n", pgm.c_str());
  }
  if (ascii) {
    std::printf("\n%s", AsciiHeatmap(layer0, mc.rows, mc.cols, 48).c_str());
  }
  if (copts.self_profile) {
    std::printf("\n%s", Profiler::Instance().Report().c_str());
  }
  return copts.guard && guard.Tripped() ? 1 : 0;
}

}  // namespace
}  // namespace cenn

int
main(int argc, char** argv)
{
  return cenn::RunMain(argc, argv);
}
