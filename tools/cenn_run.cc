/**
 * @file
 * cenn_run — the production command-line driver for the CeNN DE solver.
 *
 * Runs any bundled benchmark model with a chosen engine and prints a
 * full report: solution snapshot, accuracy against the reference
 * integrator, cycle/stall statistics, power, and optional artifacts
 * (PGM snapshot, stats file, checkpoint).
 *
 * Engines (--engine):
 *   double   functional engine, IEEE double (reference arithmetic)
 *   fixed    functional engine, Q16.16 + LUT datapath
 *   arch     cycle-level accelerator simulation (fixed datapath + timing)
 *
 * Examples:
 *   cenn_run --model=reaction_diffusion --steps=500 --engine=arch
 *   cenn_run --model=heat --engine=fixed --heun --rows=128 --cols=128
 *   cenn_run --model=poisson --steady --tolerance=1e-6
 *   cenn_run --model=gray_scott --steps=3000 --pgm=pattern.pgm
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "arch/simulator.h"
#include "core/solver.h"
#include "lut/lut_evaluator.h"
#include "mapping/mapper.h"
#include "models/benchmark_model.h"
#include "power/power_model.h"
#include "program/checkpoint.h"
#include "util/cli.h"
#include "util/io.h"
#include "util/stats.h"

namespace cenn {
namespace {

void
PrintUsage()
{
  std::printf("usage: cenn_run --model=<name> [options]\n\nmodels:");
  for (const auto& name : AllModelNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf(
      "\n\noptions:\n"
      "  --engine=double|fixed|arch   execution engine (default fixed)\n"
      "  --rows/--cols=N              grid size (default 64)\n"
      "  --steps=N                    steps (default: model default)\n"
      "  --seed=N                     RNG seed for initial conditions\n"
      "  --memory=ddr3|hmc-int|hmc-ext  arch engine memory system\n"
      "  --heun                       Heun integrator (double/fixed only)\n"
      "  --steady                     run until steady state\n"
      "  --tolerance=X                steady-state tolerance (1e-6)\n"
      "  --compare                    compare against the reference run\n"
      "  --pgm=FILE                   write layer-0 snapshot as PGM\n"
      "  --stats=FILE                 write gem5-style stats (arch only)\n"
      "  --checkpoint=FILE            write a checkpoint at the end\n"
      "  --ascii                      print an ASCII heatmap of layer 0\n");
}

int
RunMain(int argc, char** argv)
{
  CliFlags flags(argc, argv);
  const std::string model_name = flags.GetString("model", "");
  const bool help = flags.GetBool("help", false);
  if (help || model_name.empty()) {
    PrintUsage();
    return model_name.empty() && !help ? 1 : 0;
  }

  ModelConfig mc;
  mc.rows = static_cast<std::size_t>(flags.GetInt("rows", 64));
  mc.cols = static_cast<std::size_t>(flags.GetInt("cols", 64));
  mc.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const auto model = MakeModel(model_name, mc);
  const int steps =
      static_cast<int>(flags.GetInt("steps", model->DefaultSteps()));

  const std::string engine = flags.GetString("engine", "fixed");
  const std::string memory = flags.GetString("memory", "ddr3");
  const bool heun = flags.GetBool("heun", false);
  const bool steady = flags.GetBool("steady", false);
  const double tolerance = flags.GetDouble("tolerance", 1e-6);
  const bool compare = flags.GetBool("compare", false);
  const std::string pgm = flags.GetString("pgm", "");
  const std::string stats = flags.GetString("stats", "");
  const std::string checkpoint = flags.GetString("checkpoint", "");
  const bool ascii = flags.GetBool("ascii", false);
  flags.Validate();

  MapperReport map_report;
  SolverProgram program;
  program.spec = Mapper::MapWithReport(model->System(), &map_report);
  program.lut_config = model->Luts();
  if (heun) {
    if (engine == "arch") {
      CENN_FATAL("--heun applies to the functional engines only "
                 "(the hardware integrates with explicit Euler)");
    }
    program.spec.integrator = Integrator::kHeun;
  }

  std::printf("model %s: %zux%zu, %d layers (%s), %d templates with "
              "real-time update\n",
              model_name.c_str(), mc.rows, mc.cols, map_report.num_layers,
              IntegratorName(program.spec.integrator),
              map_report.templates_needing_update);

  std::vector<double> layer0;
  std::uint64_t steps_taken = 0;

  if (engine == "arch") {
    ArchConfig arch;
    if (memory == "hmc-int") {
      arch.memory = MemoryParams::HmcInt();
    } else if (memory == "hmc-ext") {
      arch.memory = MemoryParams::HmcExt();
    } else if (memory != "ddr3") {
      CENN_FATAL("unknown --memory '", memory, "'");
    }
    arch.pe_clock_hz = arch.memory.pe_clock_hint_hz;
    arch = RecommendedArchConfig(program, arch);
    ArchSimulator sim(program, arch);
    sim.Run(static_cast<std::uint64_t>(steps));
    steps_taken = sim.Report().steps;
    layer0 = sim.StateDoubles(0);

    std::printf("\n%s\n%s\n", arch.Summary().c_str(),
                sim.Report().ToString(arch.pe_clock_hz).c_str());
    const EnergyReport energy = ComputeEnergy(sim.Report(), arch);
    std::printf("power %.3f W (on-chip %.3f + memory %.3f), energy "
                "%.3f mJ, %.2f GOPS/W\n",
                energy.total_power_w, energy.onchip_power_w,
                energy.memory_power_w, energy.energy_j * 1e3,
                energy.gops_per_watt);
    if (!stats.empty()) {
      std::ofstream out(stats);
      out << sim.Report().ToStatsLines(arch.pe_clock_hz);
      std::printf("wrote stats to %s\n", stats.c_str());
    }
    if (!checkpoint.empty()) {
      Checkpoint cp = CaptureCheckpoint(sim.Engine());
      const auto bytes = SerializeCheckpoint(cp);
      std::ofstream out(checkpoint, std::ios::binary);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      std::printf("wrote checkpoint to %s (%zu bytes)\n",
                  checkpoint.c_str(), bytes.size());
    }
  } else {
    SolverOptions options;
    if (engine == "double") {
      options.precision = Precision::kDouble;
    } else if (engine == "fixed") {
      options.precision = Precision::kFixed32;
      auto bank = std::make_shared<const LutBank>(program.spec,
                                                  program.lut_config);
      options.fixed_evaluator = std::make_shared<LutEvaluatorFixed>(bank);
    } else {
      CENN_FATAL("unknown --engine '", engine, "'");
    }
    DeSolver solver(program.spec, options);
    if (steady) {
      const auto result = solver.RunUntilSteady(
          tolerance, static_cast<std::uint64_t>(steps));
      std::printf("\nsteady-state search: %s after %llu steps "
                  "(delta %.3e, tolerance %.1e)\n",
                  result.converged ? "converged" : "NOT converged",
                  static_cast<unsigned long long>(result.steps_taken),
                  result.final_delta, tolerance);
    } else {
      solver.Run(static_cast<std::uint64_t>(steps));
    }
    steps_taken = solver.Steps();
    layer0 = solver.StateDoubles(0);
    std::printf("\nengine %s: %llu steps, t = %.4f\n",
                PrecisionName(solver.GetPrecision()),
                static_cast<unsigned long long>(steps_taken),
                solver.Time());
    if (!checkpoint.empty()) {
      const auto bytes =
          SerializeCheckpoint(CaptureCheckpoint(solver));
      std::ofstream out(checkpoint, std::ios::binary);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      std::printf("wrote checkpoint to %s (%zu bytes)\n",
                  checkpoint.c_str(), bytes.size());
    }
    if (!stats.empty()) {
      CENN_WARN("--stats is only produced by --engine=arch");
    }
  }

  if (compare) {
    const auto reference =
        model->ReferenceRun(static_cast<int>(steps_taken));
    const ErrorSummary err = CompareFields(layer0, reference[0]);
    std::printf("accuracy vs reference integrator (layer 0): %s\n",
                FormatError(err).c_str());
  }
  if (!pgm.empty() &&
      WritePgm(pgm, layer0, mc.rows, mc.cols)) {
    std::printf("wrote %s\n", pgm.c_str());
  }
  if (ascii) {
    std::printf("\n%s", AsciiHeatmap(layer0, mc.rows, mc.cols, 48).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace cenn

int
main(int argc, char** argv)
{
  return cenn::RunMain(argc, argv);
}
