/**
 * @file
 * cenn_serve — long-lived multi-tenant solver service over TCP.
 *
 * Accepts newline-delimited cenn.serve.v1 JSON requests (submit /
 * status / result / cancel / snapshot / stats / ping / shutdown; see
 * docs/serve.md) and multiplexes the submitted jobs over one shared
 * worker pool, each job a fault-tolerant SolverSession with its own
 * health guard and checkpoint file under --work-dir.
 *
 * Lifecycle: the process serves until a client sends the "shutdown"
 * op or the process receives SIGTERM/SIGINT, then drains — admission
 * closes, queued jobs flush as "interrupted", running sessions pause
 * at a slice boundary, checkpoint, and report "interrupted" — and
 * exits 0. Every waiter is answered before the socket closes.
 *
 * Examples:
 *   cenn_serve --work-dir=/tmp/serve --port=7070 --threads=4
 *   cenn_serve --work-dir=/tmp/serve --port=0 --port-file=/tmp/port \
 *              --metrics-out=/tmp/serve.metrics.jsonl
 */

#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>

#include "serve/service.h"
#include "serve/tcp_server.h"
#include "util/cli.h"
#include "util/common_options.h"
#include "util/logging.h"

namespace cenn {
namespace {

constexpr unsigned kServeFlagGroups =
    kThreadsFlag | kGuardFlags | kMetricsFlags;

/** Set by the SIGTERM/SIGINT handler; polled by the main loop. */
volatile std::sig_atomic_t g_signal = 0;

void
OnSignal(int signum)
{
  g_signal = signum;
}

void
PrintUsage()
{
  std::printf(
      "usage: cenn_serve --work-dir=DIR [options]\n\n"
      "shared options:\n%s"
      "\nserve options:\n"
      "  --work-dir=DIR           checkpoint directory (required)\n"
      "  --host=ADDR              bind address (default 127.0.0.1)\n"
      "  --port=N                 TCP port; 0 = kernel-assigned (default)\n"
      "  --port-file=FILE         write the bound port here once listening\n"
      "  --queue-capacity=N       job-queue bound (default 16)\n"
      "  --tenant-quota=N         max in-flight jobs per tenant (8; 0 = off)\n"
      "  --max-in-flight=N        global in-flight bound (0 = derive)\n"
      "  --seed=N                 base seed for unseeded jobs (42)\n"
      "  --max-retries=N          extra attempts after a crash or guard\n"
      "                           trip (default 2)\n"
      "  --retry-backoff-ms=N     base retry delay, doubled per attempt\n"
      "  --checkpoint-every=N     default auto-checkpoint interval (64)\n"
      "  --max-cells=N            largest rows*cols a submit may ask (2^20)\n"
      "  --max-steps=N            largest steps a submit may ask (0 = off)\n"
      "  --retry-after-ms=N       retry hint on quota/busy rejects (200)\n"
      "  --max-line-bytes=N       request-line size cap (default 1 MiB)\n",
      CommonOptionsHelp(kServeFlagGroups).c_str());
}

int
ServeMain(int argc, char** argv)
{
  CliFlags flags(argc, argv);
  const bool help = flags.GetBool("help", false);
  const std::string work_dir = flags.GetString("work-dir", "");
  if (help || work_dir.empty()) {
    PrintUsage();
    return work_dir.empty() && !help ? 1 : 0;
  }

  // A service defaults its guard on: a hosted job that diverges must
  // trip and retry instead of burning a worker on NaNs.
  CommonOptions defaults;
  defaults.threads = 2;
  defaults.guard = true;
  const CommonOptions copts =
      ParseCommonOptions(flags, kServeFlagGroups, defaults);

  ServiceOptions options;
  options.work_dir = work_dir;
  options.num_threads = copts.threads;
  options.queue_capacity =
      static_cast<std::size_t>(flags.GetInt("queue-capacity", 16));
  options.tenant_quota = static_cast<int>(flags.GetInt("tenant-quota", 8));
  options.max_in_flight =
      static_cast<std::size_t>(flags.GetInt("max-in-flight", 0));
  options.base_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  options.max_retries = static_cast<int>(flags.GetInt("max-retries", 2));
  options.retry_backoff_ms =
      static_cast<int>(flags.GetInt("retry-backoff-ms", 0));
  options.checkpoint_every =
      static_cast<std::uint64_t>(flags.GetInt("checkpoint-every", 64));
  options.max_cells =
      static_cast<std::size_t>(flags.GetInt("max-cells", 1 << 20));
  options.max_steps =
      static_cast<std::uint64_t>(flags.GetInt("max-steps", 0));
  options.retry_after_ms =
      static_cast<int>(flags.GetInt("retry-after-ms", 200));
  options.guard_enabled = copts.guard;
  options.guard.max_abs = copts.guard_max_abs;
  options.guard.max_rms = copts.guard_max_rms;
  options.guard.max_sat_events = copts.guard_max_sat;
  options.guard.check_every = copts.guard_check_every;
  options.metrics_path = copts.metrics_out;
  options.metrics_interval_ms = copts.metrics_interval_ms;

  TcpServerOptions tcp;
  tcp.host = flags.GetString("host", "127.0.0.1");
  tcp.port = static_cast<int>(flags.GetInt("port", 0));
  tcp.max_line_bytes =
      static_cast<std::size_t>(flags.GetInt("max-line-bytes", 1 << 20));
  const std::string port_file = flags.GetString("port-file", "");
  flags.Validate();

  SolverService service(options);
  TcpServer server(
      tcp,
      [&service](const std::string& line, std::string* response) {
        return service.HandleLine(line, response);
      },
      [&service] { service.OnConnection(); });

  std::string error;
  if (!server.Start(&error)) {
    CENN_FATAL("cenn_serve: cannot listen on ", tcp.host, ":", tcp.port,
               ": ", error);
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      CENN_FATAL("cenn_serve: cannot write port file '", port_file, "'");
    }
    out << server.Port() << "\n";
  }
  std::printf("cenn_serve: listening on %s:%d (%d workers, queue %zu, "
              "quota %d)\n",
              tcp.host.c_str(), server.Port(), options.num_threads,
              options.queue_capacity, options.tenant_quota);
  std::fflush(stdout);

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  // Serve until a wire shutdown or a signal; both end in the same
  // drain sequence (stop accepting, then checkpoint-and-flush).
  while (g_signal == 0 && !server.ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const char* why = g_signal == SIGTERM   ? "SIGTERM"
                    : g_signal == SIGINT  ? "SIGINT"
                                          : "shutdown op";
  std::printf("cenn_serve: %s received, draining\n", why);
  std::fflush(stdout);

  // Drain first, then stop the transport: Stop() waits for connection
  // threads, and those may be parked in a result long-poll that only
  // Drain() wakes (it finalizes every job and notifies its waiters).
  // Submits arriving during the drain are rejected with "draining".
  service.Drain();
  server.Stop();

  std::printf("cenn_serve: drained (%llu connections served); bye\n",
              static_cast<unsigned long long>(server.ConnectionsAccepted()));
  return 0;
}

}  // namespace
}  // namespace cenn

int
main(int argc, char** argv)
{
  return cenn::ServeMain(argc, argv);
}
