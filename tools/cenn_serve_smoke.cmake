# End-to-end smoke test for the solver service: starts cenn_serve on a
# kernel-assigned port, drives it with cenn_client (ping, normal jobs,
# a fault-injected job that must recover from its checkpoint, stats),
# shuts it down over the wire, and validates the server's metrics
# stream — then starts a second server, gives it a long-running job,
# and proves SIGTERM drains cleanly (exit 0, checkpoint on disk, no
# leftover process). A third server proves LUT sharing across tenants:
# with one fisher job pinning the model's table resident, three more
# tenants run the same model and the LutStore must report exactly one
# build (lut.store.builds==1 in the metrics stream).
#
# Invoked by ctest as:
#   cmake -DCENN_SERVE=<exe> -DCENN_CLIENT=<exe> -DCENN_METRICS_CHECK=<exe>
#         -DWORK_DIR=<dir> -P cenn_serve_smoke.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Runs the client against ${port}; fails the smoke unless the exit
# code is 0 and stdout matches `expect` (a regex; "" skips the check).
function(client_must expect)
  execute_process(
      COMMAND "${CENN_CLIENT}" --port=${port} ${ARGN}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "cenn_client ${ARGN} failed (${rc}):\n${out}\n${err}")
  endif()
  if(expect AND NOT out MATCHES "${expect}")
    message(FATAL_ERROR
            "cenn_client ${ARGN}: output does not match '${expect}':\n${out}")
  endif()
  set(client_out "${out}" PARENT_SCOPE)
endfunction()

# Polls `port_file` until the server writes its bound port (or fails
# after ~15 s, dumping the server log).
function(wait_for_port port_file log_file)
  set(port "")
  foreach(i RANGE 150)
    if(EXISTS "${port_file}")
      file(READ "${port_file}" port)
      string(STRIP "${port}" port)
      if(port)
        break()
      endif()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(NOT port)
    set(log "")
    if(EXISTS "${log_file}")
      file(READ "${log_file}" log)
    endif()
    message(FATAL_ERROR "server never wrote ${port_file}:\n${log}")
  endif()
  set(port "${port}" PARENT_SCOPE)
endfunction()

# Waits for the background server to exit and asserts its log reports
# a completed drain.
function(wait_for_exit pid_file log_file)
  file(READ "${pid_file}" pid)
  string(STRIP "${pid}" pid)
  execute_process(
      COMMAND bash -c "for i in $(seq 1 300); do \
                         kill -0 ${pid} 2>/dev/null || exit 0; sleep 0.1; \
                       done; kill -9 ${pid}; exit 1"
      RESULT_VARIABLE rc)
  file(READ "${log_file}" log)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "server ${pid} never exited; killed:\n${log}")
  endif()
  if(NOT log MATCHES "drained")
    message(FATAL_ERROR "server log has no drain confirmation:\n${log}")
  endif()
endfunction()

# ---------------------------------------------------------------------------
# Phase 1: serve, recover a fault-injected job, shut down over the wire.
# ---------------------------------------------------------------------------

execute_process(
    COMMAND bash -c "\"${CENN_SERVE}\" --work-dir=${WORK_DIR}/w1 \
        --port=0 --port-file=${WORK_DIR}/port1 --threads=2 \
        --max-retries=2 --guard-check-every=1 \
        --metrics-out=${WORK_DIR}/serve.metrics.jsonl \
        --metrics-interval-ms=20 \
        > ${WORK_DIR}/server1.log 2>&1 & echo $! > ${WORK_DIR}/server1.pid"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cannot launch cenn_serve (${rc})")
endif()
wait_for_port("${WORK_DIR}/port1" "${WORK_DIR}/server1.log")
message(STATUS "server 1 listening on port ${port}")

client_must("\"ok\":true.*\"state\":\"serving\"" --op=ping)

# Two clean jobs from different tenants, run to completion.
client_must("\"status\":\"ok\"" --op=submit --tenant=alice --wait
            --spec=model=heat\ rows=12\ cols=12\ steps=60\ seed=7)
client_must("\"status\":\"ok\"" --op=submit --tenant=bob --wait
            --spec=model=reaction_diffusion\ rows=12\ cols=12\ steps=60\ seed=9)

# The recovery proof: a state-bit flip at step 30 must trip the guard,
# restore the step-20 checkpoint and finish "recovered" — while the
# server keeps serving (the ping below runs against the same process).
client_must("\"status\":\"recovered\"" --op=submit --tenant=alice --wait
            --spec=model=heat\ rows=12\ cols=12\ steps=60\ seed=7\ checkpoint_every=10
            --fault-inject=flip@30)
client_must("\"ok\":true" --op=ping)
client_must("serve.jobs_recovered" --op=stats)

# Wire shutdown: response first, then the process drains and exits 0.
client_must("\"draining\":true" --op=shutdown)
wait_for_exit("${WORK_DIR}/server1.pid" "${WORK_DIR}/server1.log")
message(STATUS "server 1 drained after wire shutdown")

# The server-wide metrics stream must validate, carry the serve.*
# subtree, and agree with what we just did: 3 completions (one of them
# recovered), at least one injected fault and one retry.
execute_process(
    COMMAND "${CENN_METRICS_CHECK}" ${WORK_DIR}/serve.metrics.jsonl
            --require=serve.
            --expect=serve.jobs_completed>=2
            --expect=serve.jobs_recovered>=1
            --expect=serve.faults_injected>=1
            --expect=serve.retries>=1
            --expect=serve.jobs_failed==0
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out_chk
    ERROR_VARIABLE err_chk)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "metrics check failed (${rc}):\n${out_chk}\n${err_chk}")
endif()

# ---------------------------------------------------------------------------
# Phase 2: SIGTERM drain with a job mid-flight.
# ---------------------------------------------------------------------------

execute_process(
    COMMAND bash -c "\"${CENN_SERVE}\" --work-dir=${WORK_DIR}/w2 \
        --port=0 --port-file=${WORK_DIR}/port2 --threads=1 \
        > ${WORK_DIR}/server2.log 2>&1 & echo $! > ${WORK_DIR}/server2.pid"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cannot launch second cenn_serve (${rc})")
endif()
wait_for_port("${WORK_DIR}/port2" "${WORK_DIR}/server2.log")
message(STATUS "server 2 listening on port ${port}")

# A job big enough to still be running when the signal lands.
client_must("\"status\":\"queued\"" --op=submit --tenant=alice
            --spec=model=heat\ rows=32\ cols=32\ steps=2000000\ checkpoint_every=64)

file(READ "${WORK_DIR}/server2.pid" pid2)
string(STRIP "${pid2}" pid2)
execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.5)
execute_process(COMMAND bash -c "kill -TERM ${pid2}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cannot signal server 2 (pid ${pid2})")
endif()
wait_for_exit("${WORK_DIR}/server2.pid" "${WORK_DIR}/server2.log")

# The interrupted session must have left a restorable checkpoint (the
# drain pauses at a slice boundary and checkpoints before reporting
# "interrupted") and no stray server process.
file(GLOB checkpoints "${WORK_DIR}/w2/*.ckpt")
if(NOT checkpoints)
  message(FATAL_ERROR "SIGTERM drain left no checkpoint in ${WORK_DIR}/w2")
endif()
message(STATUS "server 2 drained on SIGTERM, checkpoint preserved")

# ---------------------------------------------------------------------------
# Phase 3: multi-tenant LUT sharing — same model, one table build.
# ---------------------------------------------------------------------------

# Polls a job's status until its step counter advances past 0 — the
# engine (and with it the job's LutStore acquisition) provably exists
# from then on.
function(wait_for_steps job_id)
  set(started FALSE)
  foreach(i RANGE 150)
    execute_process(
        COMMAND "${CENN_CLIENT}" --port=${port} --op=status --job=${job_id}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "status poll for ${job_id} failed (${rc}):\n"
                          "${out}\n${err}")
    endif()
    if(NOT out MATCHES "\"steps_done\":\"0\"")
      set(started TRUE)
      break()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(NOT started)
    message(FATAL_ERROR "job ${job_id} never advanced past step 0")
  endif()
endfunction()

execute_process(
    COMMAND bash -c "\"${CENN_SERVE}\" --work-dir=${WORK_DIR}/w3 \
        --port=0 --port-file=${WORK_DIR}/port3 --threads=2 \
        --metrics-out=${WORK_DIR}/serve3.metrics.jsonl \
        --metrics-interval-ms=20 \
        > ${WORK_DIR}/server3.log 2>&1 & echo $! > ${WORK_DIR}/server3.pid"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cannot launch third cenn_serve (${rc})")
endif()
wait_for_port("${WORK_DIR}/port3" "${WORK_DIR}/server3.log")
message(STATUS "server 3 listening on port ${port}")

# An anchor job keeps the fisher table resident for the whole phase:
# it runs (far from done) on one worker while the tenants below come
# and go on the other, so every later acquisition must share the
# anchor's build instead of rebuilding after an eviction.
client_must("\"status\":\"queued\"" --op=submit --tenant=anchor
            --spec=model=fisher\ rows=24\ cols=24\ steps=5000000)
string(REGEX MATCH "\"job\":\"([^\"]+)\"" _ "${client_out}")
set(anchor_job "${CMAKE_MATCH_1}")
if(NOT anchor_job)
  message(FATAL_ERROR "submit response has no job id:\n${client_out}")
endif()
wait_for_steps("${anchor_job}")

# Three tenants, same model: every run acquires the table the anchor
# already holds — lut.store.builds must stay at 1 (fisher samples a
# single nonlinear function).
client_must("\"status\":\"ok\"" --op=submit --tenant=alice --wait
            --spec=model=fisher\ rows=24\ cols=24\ steps=60\ seed=3)
client_must("\"status\":\"ok\"" --op=submit --tenant=bob --wait
            --spec=model=fisher\ rows=24\ cols=24\ steps=60\ seed=5)
client_must("\"status\":\"ok\"" --op=submit --tenant=carol --wait
            --spec=model=fisher\ rows=24\ cols=24\ steps=60\ seed=8)

client_must("\"ok\":true" --op=cancel --job=${anchor_job})
client_must("\"draining\":true" --op=shutdown)
wait_for_exit("${WORK_DIR}/server3.pid" "${WORK_DIR}/server3.log")

# Four same-model acquisitions, one build; cancelling the anchor
# dropped the last handle, so the table must also have been evicted
# before the final metrics sample.
execute_process(
    COMMAND "${CENN_METRICS_CHECK}" ${WORK_DIR}/serve3.metrics.jsonl
            --require=lut.store.
            --expect=lut.store.builds==1
            --expect=lut.store.shared_acquires>=3
            --expect=lut.store.evictions>=1
            --expect=serve.jobs_completed>=3
            --expect=serve.jobs_failed==0
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out_chk
    ERROR_VARIABLE err_chk)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "LUT sharing metrics check failed (${rc}):\n${out_chk}\n${err_chk}")
endif()
message(STATUS "server 3 shared one fisher table across four tenants")

message(STATUS "SMOKE_PASS: serve lifecycle, fault recovery, drain and "
               "LUT sharing ok")
