/**
 * @file
 * cenn_stats_selftest — dependency-free schema check for the
 * observability layer, registered in CTest.
 *
 * Runs a small arch simulation and verifies the *contract* external
 * consumers (plotting scripts, run-diffing, Perfetto) rely on:
 *
 *  1. the registry exposes a minimum stat count spanning the
 *     sim.* / lut.* / dram.* hierarchies with well-formed names;
 *  2. the text dump parses back to the same values (round-trip);
 *  3. diffing a run against itself is empty, against a longer run is
 *     not;
 *  4. the Chrome trace JSON for a traced run is structurally sound
 *     (balanced brackets, one object per event, required keys);
 *  5. a traced run's SimReport is identical to an untraced one.
 *
 * Exits 0 on success; prints the first failing check and exits 1
 * otherwise.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "arch/simulator.h"
#include "mapping/mapper.h"
#include "models/benchmark_model.h"
#include "obs/stat_registry.h"
#include "obs/trace.h"

namespace cenn {
namespace {

int g_failures = 0;

void
Check(bool ok, const std::string& what)
{
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++g_failures;
  } else {
    std::printf("ok: %s\n", what.c_str());
  }
}

/** Counts names under `prefix` in a snapshot. */
std::size_t
CountPrefix(const std::map<std::string, double>& snap,
            const std::string& prefix)
{
  std::size_t n = 0;
  for (const auto& [name, value] : snap) {
    static_cast<void>(value);
    if (name.compare(0, prefix.size(), prefix) == 0) {
      ++n;
    }
  }
  return n;
}

/**
 * Minimal structural JSON scan: brackets/braces balance outside
 * strings, and string escapes are sane. Not a full parser, but
 * catches every truncation/quoting bug a formatter can produce.
 */
bool
JsonBalanced(const std::string& text)
{
  int depth_obj = 0;
  int depth_arr = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (ch == '\\') {
        escaped = true;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_string = true;
        break;
      case '{':
        ++depth_obj;
        break;
      case '}':
        if (--depth_obj < 0) {
          return false;
        }
        break;
      case '[':
        ++depth_arr;
        break;
      case ']':
        if (--depth_arr < 0) {
          return false;
        }
        break;
      default:
        break;
    }
  }
  return !in_string && depth_obj == 0 && depth_arr == 0;
}

int
Main()
{
  ModelConfig mc;
  mc.rows = 24;
  mc.cols = 24;
  const auto model = MakeModel("heat", mc);
  const SolverProgram program = MakeProgram(*model);
  ArchConfig config = RecommendedArchConfig(program);

  // --- untraced run ------------------------------------------------
  ArchSimulator sim(program, config);
  sim.Run(10);
  StatRegistry reg;
  sim.RegisterStats(&reg);
  const auto snap = reg.Snapshot();

  Check(snap.size() >= 25, "registry exposes >= 25 stats (got " +
                               std::to_string(snap.size()) + ")");
  Check(CountPrefix(snap, "sim.") >= 5, "sim.* group populated");
  Check(CountPrefix(snap, "lut.") >= 5, "lut.* group populated");
  Check(CountPrefix(snap, "dram.") >= 3, "dram.* group populated");
  Check(reg.Value("sim.steps") == 10.0, "sim.steps == 10");
  Check(reg.Value("lut.l1_accesses") >= reg.Value("lut.l1_misses"),
        "misses never exceed accesses");

  // --- dump round-trip ---------------------------------------------
  // Text dumps carry 9 significant digits, so compare with a matching
  // relative tolerance rather than bit-exactly.
  const auto parsed = StatRegistry::ParseDump(reg.DumpText(true));
  bool round_trip = parsed.size() == snap.size();
  for (const auto& [name, value] : snap) {
    const auto it = parsed.find(name);
    if (it == parsed.end() ||
        std::abs(it->second - value) >
            1e-7 * std::max(1.0, std::abs(value))) {
      round_trip = false;
      break;
    }
  }
  Check(round_trip, "DumpText -> ParseDump round-trips");
  Check(JsonBalanced(reg.DumpJson()), "stats JSON dump is balanced");

  // --- diff --------------------------------------------------------
  Check(StatRegistry::DiffSnapshots(snap, snap).empty(),
        "diff of a run against itself is empty");
  ArchSimulator longer(program, config);
  longer.Run(20);
  StatRegistry reg2;
  longer.RegisterStats(&reg2);
  Check(!StatRegistry::DiffSnapshots(snap, reg2.Snapshot()).empty(),
        "diff of different runs is non-empty");

  // --- traced run: identical report, sound JSON --------------------
  TraceSession trace(kTraceAllCategories, 1 << 16);
  ArchSimulator traced(program, config);
  traced.AttachTrace(&trace);
  traced.Run(10);
  const SimReport& a = sim.Report();
  const SimReport& b = traced.Report();
  Check(a.total_cycles == b.total_cycles &&
            a.compute_cycles == b.compute_cycles &&
            a.stall_l2_cycles == b.stall_l2_cycles &&
            a.stall_dram_cycles == b.stall_dram_cycles &&
            a.activity.l1_misses == b.activity.l1_misses &&
            a.activity.lut_dram_fetches == b.activity.lut_dram_fetches,
        "traced run reports identical timing to untraced run");
  Check(trace.Size() > 0, "traced run recorded events");
  const std::string json = trace.ToChromeJson(600.0);
  Check(JsonBalanced(json), "trace JSON is balanced");
  Check(json.find("\"traceEvents\":[") != std::string::npos,
        "trace JSON has traceEvents array");
  Check(json.find("\"ph\":\"X\"") != std::string::npos,
        "trace JSON has complete events");

  if (g_failures == 0) {
    std::printf("stats selftest: all checks passed (%zu stats)\n",
                snap.size());
    return 0;
  }
  std::fprintf(stderr, "stats selftest: %d check(s) FAILED\n", g_failures);
  return 1;
}

}  // namespace
}  // namespace cenn

int
main()
{
  return cenn::Main();
}
